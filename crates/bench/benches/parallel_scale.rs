//! Morsel-driven parallel scaling: the same JIT pipelines at 1, 2, 4, and 8
//! workers over raw CSV/JSON.
//!
//! Three cases: a parse-dominated scan+fold, a cross-format hash join, and
//! a scan-heavy query mix from `vida-workload`. Speedups are reported
//! against the single-thread run; expect ~linear scaling for scan+fold on
//! multi-core hardware (a single-core container timeslices the workers and
//! reports ~1x).

use std::sync::Arc;
use vida_bench::{case, fixtures};
use vida_exec::{run_jit, JitOptions, MemoryCatalog};
use vida_formats::csv::CsvFile;
use vida_formats::json::JsonFile;
use vida_formats::plugin::{CsvPlugin, JsonPlugin};
use vida_workload::{generate_scan_heavy, WorkloadConfig};

const ROWS: usize = 60_000;
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn catalog() -> MemoryCatalog {
    let cat = MemoryCatalog::new();
    let patients = CsvFile::from_bytes(
        "Patients",
        fixtures::patients_csv(ROWS, 7),
        b',',
        true,
        fixtures::patients_schema(),
    )
    .expect("fixture parses");
    cat.register(Arc::new(CsvPlugin::new(patients)));
    let genetics = JsonFile::from_bytes(
        "Genetics",
        fixtures::genetics_json(ROWS, 9),
        fixtures::genetics_schema(),
    )
    .expect("fixture parses");
    cat.register(Arc::new(JsonPlugin::new(genetics)));
    cat
}

fn plan(q: &str) -> vida_algebra::Plan {
    vida_algebra::rewrite(&vida_algebra::lower(&vida_lang::parse(q).expect("parses")).unwrap())
}

fn sweep(name: &str, cat: &MemoryCatalog, plans: &[vida_algebra::Plan]) {
    let mut base = None;
    for threads in THREADS {
        // The sweep measures scheduling itself, so opt out of the
        // available-parallelism clamp: oversubscribed counts must really run
        // that many workers even on small machines.
        let opts = JitOptions {
            threads,
            clamp_threads: false,
            ..Default::default()
        };
        let d = case(&format!("{name}, {threads} worker(s)"), 3, 1, || {
            for p in plans {
                run_jit(p, cat, &opts).expect("runs");
            }
        });
        match base {
            None => base = Some(d),
            Some(b) => println!(
                "{:<44} {:>11.2}x vs 1 worker",
                "", // speedup row aligns under its case
                b.as_secs_f64() / d.as_secs_f64()
            ),
        }
    }
}

fn main() {
    let cat = catalog();

    sweep(
        "scan+fold (sum over raw CSV)",
        &cat,
        &[plan("for { p <- Patients } yield sum p.age")],
    );

    sweep(
        "scan+fold (avg over raw JSON)",
        &cat,
        &[plan("for { g <- Genetics } yield avg g.snp")],
    );

    sweep(
        "cross-format hash join",
        &cat,
        &[plan(
            "for { p <- Patients, g <- Genetics, p.id = g.id, p.age > 40 } yield sum g.snp",
        )],
    );

    let mix: Vec<_> = generate_scan_heavy(&WorkloadConfig {
        queries: 8,
        ..Default::default()
    })
    .iter()
    .map(|q| plan(&q.text))
    .collect();
    sweep("scan-heavy query mix (8 queries)", &cat, &mix);
}
