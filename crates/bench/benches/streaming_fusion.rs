//! Streaming push pipelines vs the legacy materializing executor on a
//! scan→select→join→fold chain.
//!
//! The legacy path (`JitOptions::materialize_stages`) hands a full
//! `Vec<Tuple>` from every operator stage to the next; the push loop fuses
//! the chain end to end, with the join build side as the only buffer. This
//! bench records both wall time and — through a counting global allocator —
//! the **peak bytes live during execution**, which is where fusion shows up
//! even when the operator work itself dominates time.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use vida_algebra::{lower, rewrite, Plan};
use vida_bench::{case, fixtures};
use vida_exec::{run_jit_with_stats, JitOptions, MemoryCatalog};
use vida_formats::csv::CsvFile;
use vida_formats::json::JsonFile;
use vida_formats::plugin::{CsvPlugin, JsonPlugin};
use vida_lang::parse;

/// Counting allocator: tracks live bytes and the high-water mark so the
/// bench can report peak allocation per execution mode.
struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Peak live bytes while running `f` (relative to the bytes live at entry).
fn peak_during<F: FnMut()>(mut f: F) -> usize {
    let base = LIVE.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    f();
    PEAK.load(Ordering::Relaxed).saturating_sub(base)
}

fn plan_of(q: &str) -> Plan {
    rewrite(&lower(&parse(q).expect("parses")).expect("lowers"))
}

fn kib(bytes: usize) -> f64 {
    bytes as f64 / 1024.0
}

fn main() {
    let catalog = MemoryCatalog::new();
    let patients = CsvFile::from_bytes(
        "Patients",
        fixtures::patients_csv(20_000, 7),
        b',',
        true,
        fixtures::patients_schema(),
    )
    .expect("fixture parses");
    catalog.register(Arc::new(CsvPlugin::new(patients)));
    let genetics = JsonFile::from_bytes(
        "Genetics",
        fixtures::genetics_json(20_000, 13),
        fixtures::genetics_schema(),
    )
    .expect("fixture parses");
    catalog.register(Arc::new(JsonPlugin::new(genetics)));

    // The chain the issue names: scan → select → hash-join probe → fold.
    let chain =
        plan_of("for { p <- Patients, g <- Genetics, p.id = g.id, p.age > 40 } yield sum g.snp");

    let streaming = JitOptions::default();
    let materializing = JitOptions {
        materialize_stages: true,
        ..Default::default()
    };

    // Prove the modes are what they claim before timing them.
    let (v_stream, s_stream) = run_jit_with_stats(&chain, &catalog, &streaming).expect("runs");
    let (v_mat, s_mat) = run_jit_with_stats(&chain, &catalog, &materializing).expect("runs");
    assert_eq!(v_stream, v_mat, "modes must agree");
    assert_eq!(s_stream.operator_materializations, 0);
    assert!(s_mat.operator_materializations >= 2);
    println!(
        "join+fold chain (20k x 20k rows): fused depth {}, \
         materializing buffers {}",
        s_stream.fused_stage_depth, s_mat.operator_materializations
    );

    let t_mat = case("chain: materializing (legacy pull)", 3, 5, || {
        run_jit_with_stats(&chain, &catalog, &materializing).expect("runs");
    });
    let t_stream = case("chain: streaming push (serial)", 3, 5, || {
        run_jit_with_stats(&chain, &catalog, &streaming).expect("runs");
    });
    println!(
        "streaming speedup (materializing/streaming): {:.2}x",
        t_mat.as_secs_f64() / t_stream.as_secs_f64().max(1e-12)
    );

    // Peak-allocation comparison (one untimed run per mode, post-warmup).
    let peak_mat = peak_during(|| {
        run_jit_with_stats(&chain, &catalog, &materializing).expect("runs");
    });
    let peak_stream = peak_during(|| {
        run_jit_with_stats(&chain, &catalog, &streaming).expect("runs");
    });
    println!(
        "peak allocation: materializing {:.1} KiB, streaming {:.1} KiB ({:.2}x drop)",
        kib(peak_mat),
        kib(peak_stream),
        peak_mat as f64 / peak_stream.max(1) as f64
    );

    // A selective select→fold chain, where the legacy path buffers every
    // surviving tuple before folding.
    let fold = plan_of("for { p <- Patients, p.age > 30 } yield sum p.age");
    let t_mat = case("scan+select+fold: materializing", 3, 5, || {
        run_jit_with_stats(&fold, &catalog, &materializing).expect("runs");
    });
    let t_stream = case("scan+select+fold: streaming push", 3, 5, || {
        run_jit_with_stats(&fold, &catalog, &streaming).expect("runs");
    });
    println!(
        "streaming speedup (materializing/streaming): {:.2}x",
        t_mat.as_secs_f64() / t_stream.as_secs_f64().max(1e-12)
    );
    let peak_mat = peak_during(|| {
        run_jit_with_stats(&fold, &catalog, &materializing).expect("runs");
    });
    let peak_stream = peak_during(|| {
        run_jit_with_stats(&fold, &catalog, &streaming).expect("runs");
    });
    println!(
        "peak allocation: materializing {:.1} KiB, streaming {:.1} KiB ({:.2}x drop)",
        kib(peak_mat),
        kib(peak_stream),
        peak_mat as f64 / peak_stream.max(1) as f64
    );
}
