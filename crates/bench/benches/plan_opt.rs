//! Cost-based plan optimization vs syntactic join order.
//!
//! The headline case is a misordered 3-way join: written naively, the two
//! fact tables join first on a low-distinct key (a 100x fan-out), and the
//! selective dim filter only applies to the exploded intermediate. The
//! optimizer's greedy order search joins through the dim first, so the
//! fan-out join runs over 50 tuples instead of 5000. The control case is
//! an already-optimal single join, where the optimizer must arrive at the
//! identity order and add no measurable overhead.

use vida_algebra::{lower, rewrite, Plan};
use vida_bench::case;
use vida_exec::{run_jit_with_stats, JitOptions, MemoryCatalog};
use vida_lang::parse;
use vida_types::{Schema, Type, Value};

const FACT_ROWS: i64 = 5_000;
const DIM_ROWS: i64 = 50;

fn plan_of(q: &str) -> Plan {
    rewrite(&lower(&parse(q).expect("parses")).expect("lowers"))
}

/// Dim(id): 50 rows. F1(a, v) and F2(a, k): 5000 rows each with
/// `a = i % 50` (so F1⋈F2 on `a` fans out 100x) and `k = i` (so only 50
/// F2 rows survive the dim join).
fn catalog() -> MemoryCatalog {
    let cat = MemoryCatalog::new();
    let dims: Vec<Value> = (0..DIM_ROWS)
        .map(|i| Value::record([("id", Value::Int(i))]))
        .collect();
    cat.register_records("Dim", Schema::from_pairs([("id", Type::Int)]), &dims)
        .unwrap();
    let f1: Vec<Value> = (0..FACT_ROWS)
        .map(|i| Value::record([("a", Value::Int(i % DIM_ROWS)), ("v", Value::Int(i))]))
        .collect();
    cat.register_records(
        "F1",
        Schema::from_pairs([("a", Type::Int), ("v", Type::Int)]),
        &f1,
    )
    .unwrap();
    let f2: Vec<Value> = (0..FACT_ROWS)
        .map(|i| Value::record([("a", Value::Int(i % DIM_ROWS)), ("k", Value::Int(i))]))
        .collect();
    cat.register_records(
        "F2",
        Schema::from_pairs([("a", Type::Int), ("k", Type::Int)]),
        &f2,
    )
    .unwrap();
    cat
}

fn main() {
    let catalog = catalog();
    let on = JitOptions::default();
    let off = JitOptions {
        plan_opt: false,
        ..Default::default()
    };

    // Misordered 3-way: the fan-out join (b1.a = b2.a) is written first,
    // the selective dim join (b2.k = d.id) last.
    let misordered =
        plan_of("for { b1 <- F1, b2 <- F2, d <- Dim, b1.a = b2.a, b2.k = d.id } yield sum b1.v");

    // Prove the modes are what they claim before timing them.
    let (v_on, s_on) = run_jit_with_stats(&misordered, &catalog, &on).expect("runs");
    let (v_off, s_off) = run_jit_with_stats(&misordered, &catalog, &off).expect("runs");
    assert_eq!(v_on, v_off, "plan_opt must not change results");
    assert!(
        s_on.joins_reordered > 0,
        "the misordered 3-way join must be reordered"
    );
    assert_eq!(s_off.joins_reordered, 0);
    assert_eq!(s_on.whole_query_fallbacks, 0);
    println!(
        "misordered 3-way join ({FACT_ROWS}x{FACT_ROWS}x{DIM_ROWS} rows): \
         {} joins reordered",
        s_on.joins_reordered
    );

    let t_off = case("3-way join: syntactic order (--no-plan-opt)", 3, 5, || {
        run_jit_with_stats(&misordered, &catalog, &off).expect("runs");
    });
    let t_on = case("3-way join: cost-based order", 3, 5, || {
        run_jit_with_stats(&misordered, &catalog, &on).expect("runs");
    });
    let speedup = t_off.as_secs_f64() / t_on.as_secs_f64().max(1e-12);
    println!("plan-opt speedup (syntactic/optimized): {speedup:.2}x");
    assert!(
        speedup >= 1.5,
        "misordered 3-way join must speed up by >= 1.5x (got {speedup:.2}x)"
    );

    // Already-optimal single join: the dim is the build side in the
    // syntactic order too, so the optimizer must leave the plan alone —
    // identical plans cannot regress beyond reorder-search noise.
    let optimal = plan_of("for { b1 <- F1, d <- Dim, b1.a = d.id } yield sum b1.v");
    let (v_on, s_on) = run_jit_with_stats(&optimal, &catalog, &on).expect("runs");
    let (v_off, s_off) = run_jit_with_stats(&optimal, &catalog, &off).expect("runs");
    assert_eq!(v_on, v_off);
    assert_eq!(
        s_on.joins_reordered, 0,
        "the already-optimal join must pass through untouched"
    );
    assert_eq!(s_off.joins_reordered, 0);

    let t_off = case("optimal single join: --no-plan-opt", 3, 20, || {
        run_jit_with_stats(&optimal, &catalog, &off).expect("runs");
    });
    let t_on = case("optimal single join: plan opt on", 3, 20, || {
        run_jit_with_stats(&optimal, &catalog, &on).expect("runs");
    });
    let overhead = (t_on.as_secs_f64() / t_off.as_secs_f64().max(1e-12) - 1.0) * 100.0;
    println!("plan-opt overhead on the optimal join: {overhead:+.1}%");
}
