//! The process-wide metrics registry: relaxed atomic counters and
//! log2-bucket histograms, cheap enough to stay on unconditionally.
//!
//! Producers increment per *operation* (a cache probe, a replica insert, a
//! worker's whole run), never per tuple, so the registry costs nothing
//! measurable on the hot path. Consumers take a [`MetricsSnapshot`] — a
//! plain-value copy that can be diffed across a workload and serialized as
//! JSON by hand (no serde in this workspace).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// A relaxed atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `b` counts values whose bit length
/// is `b`, i.e. bucket 0 holds zeros and bucket `b ≥ 1` holds values in
/// `[2^(b-1), 2^b)`. 64-bit values need bit lengths 0..=64.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucket histogram with a running sum, all relaxed atomics.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// Bucket index for a value: its bit length.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Plain-value copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum(),
        }
    }
}

/// Plain-value histogram state, diffable and serializable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    pub sum: u64,
}

impl HistogramSnapshot {
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Bucketwise difference against an earlier snapshot.
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }

    /// Append this histogram as a JSON object: total count, sum, and the
    /// non-empty buckets as `[bit_length, count]` pairs.
    pub fn write_json(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"count\":{},\"sum\":{},\"buckets\":[",
            self.count(),
            self.sum
        ));
        let mut first = true;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!("[{b},{n}]"));
            }
        }
        out.push_str("]}");
    }
}

/// Engine-wide metrics. One global instance lives behind
/// [`global_metrics`]; tests may construct private registries.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    /// Cache probes answered from a replica (`CacheManager::get`/`get_any`).
    pub cache_hits: Counter,
    /// Cache probes that missed.
    pub cache_misses: Counter,
    /// Replicas inserted into a cache.
    pub cache_insertions: Counter,
    /// Replicas evicted to make room.
    pub cache_evictions: Counter,
    /// Replicas dropped because their source changed underneath them.
    pub cache_invalidations: Counter,
    /// Size distribution of inserted replicas, bytes.
    pub cache_replica_bytes: Histogram,
    /// Nanoseconds pool workers spent inside morsel work closures.
    pub worker_busy_ns: Counter,
    /// Nanoseconds pool workers spent claiming/waiting between morsels.
    pub worker_idle_ns: Counter,
    /// Threaded pool runs completed.
    pub pool_runs: Counter,
    /// OS threads spawned for pool work. Per-run scoped spawns count every
    /// worker of every run; a resident pool counts its workers once, at
    /// construction — so a zero delta across a query proves the resident
    /// path spawned nothing.
    pub pool_thread_spawns: Counter,
    /// Morsel runs attached to (and detached from) a resident pool.
    pub pool_attached_runs: Counter,
    /// Morsel claims taken while ≥2 runs were in flight on one resident
    /// pool — the time-slicing signal: nonzero means concurrent queries
    /// actually interleaved at morsel granularity.
    pub pool_multiplexed_claims: Counter,
    /// Morsels claimed by one worker in one run (per-worker distribution;
    /// a wide spread between buckets means claim imbalance).
    pub worker_morsel_claims: Histogram,
    /// Per-run spread `max − min` of morsel claims across workers — the
    /// steal-imbalance signal.
    pub morsel_claim_spread: Histogram,
    /// Total compiled-kernel invocations recorded by traced queries.
    pub kernel_invocations: Counter,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Plain-value copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            cache_insertions: self.cache_insertions.get(),
            cache_evictions: self.cache_evictions.get(),
            cache_invalidations: self.cache_invalidations.get(),
            cache_replica_bytes: self.cache_replica_bytes.snapshot(),
            worker_busy_ns: self.worker_busy_ns.get(),
            worker_idle_ns: self.worker_idle_ns.get(),
            pool_runs: self.pool_runs.get(),
            pool_thread_spawns: self.pool_thread_spawns.get(),
            pool_attached_runs: self.pool_attached_runs.get(),
            pool_multiplexed_claims: self.pool_multiplexed_claims.get(),
            worker_morsel_claims: self.worker_morsel_claims.snapshot(),
            morsel_claim_spread: self.morsel_claim_spread.snapshot(),
            kernel_invocations: self.kernel_invocations.get(),
        }
    }
}

/// Plain-value copy of the registry at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_insertions: u64,
    pub cache_evictions: u64,
    pub cache_invalidations: u64,
    pub cache_replica_bytes: HistogramSnapshot,
    pub worker_busy_ns: u64,
    pub worker_idle_ns: u64,
    pub pool_runs: u64,
    pub pool_thread_spawns: u64,
    pub pool_attached_runs: u64,
    pub pool_multiplexed_claims: u64,
    pub worker_morsel_claims: HistogramSnapshot,
    pub morsel_claim_spread: HistogramSnapshot,
    pub kernel_invocations: u64,
}

impl MetricsSnapshot {
    /// Fieldwise difference against an earlier snapshot — the way to scope
    /// the global registry to one workload.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            cache_insertions: self
                .cache_insertions
                .saturating_sub(earlier.cache_insertions),
            cache_evictions: self.cache_evictions.saturating_sub(earlier.cache_evictions),
            cache_invalidations: self
                .cache_invalidations
                .saturating_sub(earlier.cache_invalidations),
            cache_replica_bytes: self.cache_replica_bytes.since(&earlier.cache_replica_bytes),
            worker_busy_ns: self.worker_busy_ns.saturating_sub(earlier.worker_busy_ns),
            worker_idle_ns: self.worker_idle_ns.saturating_sub(earlier.worker_idle_ns),
            pool_runs: self.pool_runs.saturating_sub(earlier.pool_runs),
            pool_thread_spawns: self
                .pool_thread_spawns
                .saturating_sub(earlier.pool_thread_spawns),
            pool_attached_runs: self
                .pool_attached_runs
                .saturating_sub(earlier.pool_attached_runs),
            pool_multiplexed_claims: self
                .pool_multiplexed_claims
                .saturating_sub(earlier.pool_multiplexed_claims),
            worker_morsel_claims: self
                .worker_morsel_claims
                .since(&earlier.worker_morsel_claims),
            morsel_claim_spread: self.morsel_claim_spread.since(&earlier.morsel_claim_spread),
            kernel_invocations: self
                .kernel_invocations
                .saturating_sub(earlier.kernel_invocations),
        }
    }

    /// Serialize as a JSON object (hand-rolled; parseable by the repo's own
    /// JSON reader).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push('{');
        out.push_str(&format!("\"cache_hits\":{},", self.cache_hits));
        out.push_str(&format!("\"cache_misses\":{},", self.cache_misses));
        out.push_str(&format!("\"cache_insertions\":{},", self.cache_insertions));
        out.push_str(&format!("\"cache_evictions\":{},", self.cache_evictions));
        out.push_str(&format!(
            "\"cache_invalidations\":{},",
            self.cache_invalidations
        ));
        out.push_str("\"cache_replica_bytes\":");
        self.cache_replica_bytes.write_json(&mut out);
        out.push(',');
        out.push_str(&format!("\"worker_busy_ns\":{},", self.worker_busy_ns));
        out.push_str(&format!("\"worker_idle_ns\":{},", self.worker_idle_ns));
        out.push_str(&format!("\"pool_runs\":{},", self.pool_runs));
        out.push_str(&format!(
            "\"pool_thread_spawns\":{},",
            self.pool_thread_spawns
        ));
        out.push_str(&format!(
            "\"pool_attached_runs\":{},",
            self.pool_attached_runs
        ));
        out.push_str(&format!(
            "\"pool_multiplexed_claims\":{},",
            self.pool_multiplexed_claims
        ));
        out.push_str("\"worker_morsel_claims\":");
        self.worker_morsel_claims.write_json(&mut out);
        out.push(',');
        out.push_str("\"morsel_claim_spread\":");
        self.morsel_claim_spread.write_json(&mut out);
        out.push(',');
        out.push_str(&format!(
            "\"kernel_invocations\":{}",
            self.kernel_invocations
        ));
        out.push('}');
        out
    }
}

static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();

/// The engine-wide registry. Counters only ever grow; scope readings to a
/// window by diffing snapshots with [`MetricsSnapshot::since`].
pub fn global_metrics() -> &'static MetricsRegistry {
    GLOBAL.get_or_init(MetricsRegistry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_follow_bit_length() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_counts_and_sums() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
        let snap = h.snapshot();
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[1], 1);
        assert_eq!(snap.buckets[2], 2);
        assert_eq!(snap.buckets[11], 1);
    }

    #[test]
    fn snapshot_diffs_scope_a_window() {
        let reg = MetricsRegistry::new();
        reg.cache_hits.add(5);
        let before = reg.snapshot();
        reg.cache_hits.add(3);
        reg.cache_replica_bytes.record(100);
        let delta = reg.snapshot().since(&before);
        assert_eq!(delta.cache_hits, 3);
        assert_eq!(delta.cache_replica_bytes.count(), 1);
        assert_eq!(delta.cache_replica_bytes.sum, 100);
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let reg = MetricsRegistry::new();
        reg.cache_hits.add(7);
        reg.worker_morsel_claims.record(3);
        let json = reg.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"cache_hits\":7"));
        assert!(json.contains("\"buckets\":[[2,1]]"));
        // Balanced braces/brackets (the real parse round-trip lives in
        // vida-exec's integration tests, next to the JSON reader).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn global_registry_is_shared_and_monotonic() {
        let a = global_metrics().snapshot();
        global_metrics().pool_runs.inc();
        let b = global_metrics().snapshot();
        assert!(b.pool_runs > a.pool_runs);
    }
}
