//! Per-query span recording.
//!
//! A [`QueryTrace`] is a single track's buffer: the coordinator owns one
//! (track 0), and each pool worker records into its own buffer (tracks
//! `1..=threads`) created with [`QueryTrace::with_epoch`] so all tracks
//! share one time origin. Recording is plain `Vec` pushes — no locks, no
//! atomics — and worker buffers are absorbed into the coordinator's at the
//! points where the engine already merges per-morsel results, preserving
//! morsel order and therefore determinism of the aggregated counters.
//!
//! Spans follow stack discipline within a track: `begin` pushes, `end`
//! (or [`QueryTrace::end_counted`]) pops the innermost open span. That
//! gives two invariants consumers may rely on: spans in one track never
//! partially overlap, and a child span's interval is contained in its
//! parent's.

use std::time::Instant;

/// The static stage taxonomy. Every span names one of these phases; see
/// ARCHITECTURE.md ("Observability") for what each covers.
pub mod stage {
    /// Algebra lowering: left-deepening, shape analysis, layout binding.
    pub const LOWER: &str = "lower";
    /// Kernel compilation: expression → closure kernels, fusion, head plan.
    pub const CODEGEN: &str = "codegen";
    /// Cache lookups and replica decode for the query's touched columns.
    pub const CACHE_PROBE: &str = "cache_probe";
    /// Hash/band build over a join's right side.
    pub const BUILD_SIDE: &str = "build_side";
    /// Raw-data scans: tokenize + parse of CSV/JSON columns.
    pub const SCAN: &str = "scan";
    /// The fused probe loop of a join-bearing pipeline.
    pub const PROBE: &str = "probe";
    /// Stream folding: monoid merge of tuples / per-morsel partials.
    pub const FOLD: &str = "fold";
    /// Post-query cost-model replica writes.
    pub const REPLICA_SYNC: &str = "replica_sync";
}

/// One closed (or still-open, `dur_ns = 0`) span on a track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Stage name from [`stage`].
    pub stage: &'static str,
    /// Track id: 0 = coordinator, `1..=threads` = pool workers.
    pub worker: u32,
    /// Nesting depth at `begin` time (0 = top level of its track).
    pub depth: u32,
    /// Start offset from the query epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 while the span is still open).
    pub dur_ns: u64,
    /// Tuples attributed to this span (leaf spans carry the counts; wrapper
    /// spans leave 0 so aggregation never double-counts).
    pub tuples: u64,
    /// Morsels attributed to this span.
    pub morsels: u64,
}

impl Span {
    /// End offset from the query epoch, nanoseconds.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

/// Per-stage aggregate over a whole trace, in first-start order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTotals {
    pub stage: &'static str,
    /// Number of spans with this stage.
    pub spans: u64,
    /// Earliest start across the stage's spans (ns from epoch).
    pub first_start_ns: u64,
    /// Extent of the stage: latest end minus earliest start.
    pub wall_ns: u64,
    /// Summed span durations (counts each worker's time, so it can exceed
    /// `wall_ns` when workers run concurrently).
    pub busy_ns: u64,
    pub tuples: u64,
    pub morsels: u64,
    /// Distinct tracks that recorded this stage.
    pub workers: u64,
    /// Minimum nesting depth observed (drives the indent in
    /// [`QueryTrace::explain_analyze`]).
    pub min_depth: u32,
}

/// One track's span buffer plus the per-kernel invocation counts recorded
/// on that track. See the module docs for the recording protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    epoch: Instant,
    worker: u32,
    spans: Vec<Span>,
    open: Vec<usize>,
    kernel_invocations: Vec<u64>,
}

impl QueryTrace {
    /// Start a coordinator trace (track 0) with a fresh epoch.
    pub fn start() -> Self {
        Self::with_epoch(0, Instant::now())
    }

    /// Start a worker-track buffer sharing the coordinator's epoch, so
    /// timestamps from every track live on one axis.
    pub fn with_epoch(worker: u32, epoch: Instant) -> Self {
        QueryTrace {
            epoch,
            worker,
            spans: Vec::new(),
            open: Vec::new(),
            kernel_invocations: Vec::new(),
        }
    }

    /// The shared time origin (hand it to [`QueryTrace::with_epoch`]).
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// This buffer's track id.
    pub fn worker(&self) -> u32 {
        self.worker
    }

    /// Open a span. Must be balanced by [`QueryTrace::end`] /
    /// [`QueryTrace::end_counted`] on the same track.
    #[inline]
    pub fn begin(&mut self, stage: &'static str) {
        let start_ns = self.epoch.elapsed().as_nanos() as u64;
        let idx = self.spans.len();
        self.spans.push(Span {
            stage,
            worker: self.worker,
            depth: self.open.len() as u32,
            start_ns,
            dur_ns: 0,
            tuples: 0,
            morsels: 0,
        });
        self.open.push(idx);
    }

    /// Close the innermost open span without attributing counts.
    #[inline]
    pub fn end(&mut self) {
        self.end_counted(0, 0);
    }

    /// Close the innermost open span, attributing `tuples` and `morsels`.
    #[inline]
    pub fn end_counted(&mut self, tuples: u64, morsels: u64) {
        let now_ns = self.epoch.elapsed().as_nanos() as u64;
        let Some(idx) = self.open.pop() else {
            debug_assert!(false, "QueryTrace::end without matching begin");
            return;
        };
        let span = &mut self.spans[idx];
        span.dur_ns = now_ns.saturating_sub(span.start_ns);
        span.tuples = tuples;
        span.morsels = morsels;
    }

    /// Record one invocation of kernel `id` (dense ids assigned at compile
    /// time).
    #[inline]
    pub fn kernel_hit(&mut self, id: u32) {
        self.kernel_hits(id, 1);
    }

    /// Record `n` invocations of kernel `id`.
    #[inline]
    pub fn kernel_hits(&mut self, id: u32, n: u64) {
        let i = id as usize;
        if self.kernel_invocations.len() <= i {
            self.kernel_invocations.resize(i + 1, 0);
        }
        self.kernel_invocations[i] += n;
    }

    /// Merge a worker buffer into this one: spans are appended (each span
    /// already carries its track id) and kernel counts are summed. Call in
    /// morsel order to keep aggregate ordering deterministic.
    pub fn absorb(&mut self, other: QueryTrace) {
        debug_assert!(
            other.open.is_empty(),
            "absorbing a trace with open spans loses their durations"
        );
        self.spans.extend(other.spans);
        if self.kernel_invocations.len() < other.kernel_invocations.len() {
            self.kernel_invocations
                .resize(other.kernel_invocations.len(), 0);
        }
        for (acc, n) in self
            .kernel_invocations
            .iter_mut()
            .zip(&other.kernel_invocations)
        {
            *acc += n;
        }
    }

    /// All recorded spans, in recording/absorb order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of spans still open (0 once a query finished cleanly).
    pub fn open_spans(&self) -> usize {
        self.open.len()
    }

    /// Invocation counts indexed by kernel id.
    pub fn kernel_invocations(&self) -> &[u64] {
        &self.kernel_invocations
    }

    /// The most-invoked kernel as `(id, count)`, if any kernel ran.
    pub fn hottest_kernel(&self) -> Option<(u32, u64)> {
        self.kernel_invocations
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .max_by_key(|&(i, &n)| (n, std::cmp::Reverse(i)))
            .map(|(i, &n)| (i as u32, n))
    }

    /// Distinct track ids present, ascending.
    pub fn tracks(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.spans.iter().map(|s| s.worker).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Aggregate spans per stage, ordered by each stage's earliest start.
    pub fn stage_totals(&self) -> Vec<StageTotals> {
        let mut totals: Vec<StageTotals> = Vec::new();
        for s in &self.spans {
            let entry = match totals.iter_mut().find(|t| t.stage == s.stage) {
                Some(t) => t,
                None => {
                    totals.push(StageTotals {
                        stage: s.stage,
                        spans: 0,
                        first_start_ns: s.start_ns,
                        wall_ns: 0,
                        busy_ns: 0,
                        tuples: 0,
                        morsels: 0,
                        workers: 0,
                        min_depth: s.depth,
                    });
                    totals.last_mut().expect("just pushed")
                }
            };
            entry.spans += 1;
            entry.first_start_ns = entry.first_start_ns.min(s.start_ns);
            entry.busy_ns += s.dur_ns;
            entry.tuples += s.tuples;
            entry.morsels += s.morsels;
            entry.min_depth = entry.min_depth.min(s.depth);
        }
        for t in totals.iter_mut() {
            let stage_spans = self.spans.iter().filter(|s| s.stage == t.stage);
            let last_end = stage_spans.clone().map(Span::end_ns).max().unwrap_or(0);
            t.wall_ns = last_end.saturating_sub(t.first_start_ns);
            let mut workers: Vec<u32> = stage_spans.map(|s| s.worker).collect();
            workers.sort_unstable();
            workers.dedup();
            t.workers = workers.len() as u64;
        }
        totals.sort_by_key(|t| t.first_start_ns);
        totals
    }

    /// Total query extent: latest span end, ns from epoch.
    pub fn wall_ns(&self) -> u64 {
        self.spans.iter().map(Span::end_ns).max().unwrap_or(0)
    }

    /// Render the per-stage execution profile: wall/busy time, tuples, and
    /// morsels per stage, in pipeline order, indented by nesting depth.
    pub fn explain_analyze(&self) -> String {
        let ms = |ns: u64| ns as f64 / 1e6;
        let tracks = self.tracks();
        let workers = tracks.iter().filter(|&&w| w > 0).count();
        let mut out = format!(
            "EXPLAIN ANALYZE — wall {:.3} ms, {} spans, {} track{} (coordinator + {} worker{})\n",
            ms(self.wall_ns()),
            self.spans.len(),
            tracks.len(),
            if tracks.len() == 1 { "" } else { "s" },
            workers,
            if workers == 1 { "" } else { "s" },
        );
        out.push_str(&format!(
            "{:<24} {:>10} {:>10} {:>7} {:>10} {:>8} {:>8}\n",
            "stage", "wall ms", "busy ms", "spans", "tuples", "morsels", "workers"
        ));
        for t in self.stage_totals() {
            let name = format!("{}{}", "  ".repeat(t.min_depth as usize), t.stage);
            out.push_str(&format!(
                "{:<24} {:>10.3} {:>10.3} {:>7} {:>10} {:>8} {:>8}\n",
                name,
                ms(t.wall_ns),
                ms(t.busy_ns),
                t.spans,
                t.tuples,
                t.morsels,
                t.workers,
            ));
        }
        let invocations: u64 = self.kernel_invocations.iter().sum();
        match self.hottest_kernel() {
            Some((id, n)) => out.push_str(&format!(
                "kernels: {} with recorded calls, {} invocations (hottest #{id} × {n})\n",
                self.kernel_invocations.iter().filter(|&&n| n > 0).count(),
                invocations,
            )),
            None => out.push_str("kernels: no invocations recorded\n"),
        }
        out
    }

    /// Export this trace alone as Chrome trace-event JSON. For multi-query
    /// timelines use [`crate::chrome::chrome_trace_json`] directly.
    pub fn to_chrome_json(&self) -> String {
        crate::chrome::chrome_trace_json(&[(0, self)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: &QueryTrace, i: usize) -> Span {
        trace.spans()[i]
    }

    #[test]
    fn spans_follow_stack_discipline() {
        let mut t = QueryTrace::start();
        t.begin(stage::LOWER);
        t.end();
        t.begin(stage::FOLD);
        t.begin(stage::SCAN);
        t.end_counted(100, 4);
        t.end();
        assert_eq!(t.open_spans(), 0);
        assert_eq!(span(&t, 0).stage, stage::LOWER);
        assert_eq!(span(&t, 0).depth, 0);
        assert_eq!(span(&t, 1).stage, stage::FOLD);
        assert_eq!(span(&t, 2).stage, stage::SCAN);
        assert_eq!(span(&t, 2).depth, 1);
        assert_eq!(span(&t, 2).tuples, 100);
        assert_eq!(span(&t, 2).morsels, 4);
        // Child contained in parent.
        let fold = span(&t, 1);
        let scan = span(&t, 2);
        assert!(fold.start_ns <= scan.start_ns);
        assert!(scan.end_ns() <= fold.end_ns());
    }

    #[test]
    fn worker_buffers_share_the_epoch_and_absorb_in_order() {
        let mut coord = QueryTrace::start();
        coord.begin(stage::FOLD);
        let mut w1 = QueryTrace::with_epoch(1, coord.epoch());
        w1.begin(stage::SCAN);
        w1.end_counted(10, 1);
        w1.kernel_hits(2, 10);
        let mut w2 = QueryTrace::with_epoch(2, coord.epoch());
        w2.begin(stage::SCAN);
        w2.end_counted(20, 1);
        w2.kernel_hit(0);
        coord.end();
        coord.absorb(w1);
        coord.absorb(w2);
        assert_eq!(coord.tracks(), vec![0, 1, 2]);
        assert_eq!(coord.kernel_invocations(), &[1, 0, 10]);
        let totals = coord.stage_totals();
        let scan = totals.iter().find(|t| t.stage == stage::SCAN).unwrap();
        assert_eq!(scan.tuples, 30);
        assert_eq!(scan.morsels, 2);
        assert_eq!(scan.workers, 2);
        assert_eq!(coord.hottest_kernel(), Some((2, 10)));
    }

    #[test]
    fn stage_totals_order_by_first_start() {
        let mut t = QueryTrace::start();
        t.begin(stage::CODEGEN);
        t.end();
        t.begin(stage::SCAN);
        t.end();
        t.begin(stage::CODEGEN); // second codegen burst folds into the first row
        t.end();
        let totals = t.stage_totals();
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0].stage, stage::CODEGEN);
        assert_eq!(totals[0].spans, 2);
        assert_eq!(totals[1].stage, stage::SCAN);
    }

    #[test]
    fn explain_analyze_mentions_every_stage_once() {
        let mut t = QueryTrace::start();
        t.begin(stage::LOWER);
        t.end();
        t.begin(stage::FOLD);
        t.begin(stage::PROBE);
        t.end_counted(42, 1);
        t.end();
        t.kernel_hits(0, 42);
        let text = t.explain_analyze();
        assert_eq!(text.matches("lower").count(), 1);
        assert_eq!(text.matches("probe").count(), 1);
        assert!(text.contains("42"));
        assert!(text.contains("hottest #0 × 42"));
        // The probe row is indented under fold.
        assert!(text.contains("\n  probe") || text.contains("\n                  probe"));
    }

    #[test]
    fn hottest_kernel_prefers_lowest_id_on_ties() {
        let mut t = QueryTrace::start();
        t.kernel_hits(3, 5);
        t.kernel_hits(1, 5);
        assert_eq!(t.hottest_kernel(), Some((1, 5)));
        assert_eq!(QueryTrace::start().hottest_kernel(), None);
    }
}
