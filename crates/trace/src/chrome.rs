//! Chrome trace-event JSON export, hand-rolled (the workspace has no
//! serde). The output loads in Perfetto and `chrome://tracing`: complete
//! (`"ph":"X"`) events with microsecond timestamps, one `tid` track per
//! worker (tid 0 = the coordinator), and metadata events naming each
//! track. Tuple/morsel counts ride in each event's `args`.

use crate::span::QueryTrace;

/// Escape a string for a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Export one or more query traces on a shared timeline. Each entry is
/// `(offset_ns, trace)`: the trace's epoch expressed as nanoseconds from
/// the timeline origin (0 for a single query; the per-query start offset
/// when exporting a whole workload).
pub fn chrome_trace_json(traces: &[(u64, &QueryTrace)]) -> String {
    let micros = |ns: u64| ns as f64 / 1000.0;
    let mut events: Vec<String> = Vec::new();
    let mut tracks: Vec<u32> = Vec::new();
    for (q, (offset_ns, trace)) in traces.iter().enumerate() {
        for span in trace.spans() {
            if !tracks.contains(&span.worker) {
                tracks.push(span.worker);
            }
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"query\",\"ph\":\"X\",\"ts\":{:.3},\
                 \"dur\":{:.3},\"pid\":0,\"tid\":{},\"args\":{{\"query\":{},\
                 \"depth\":{},\"tuples\":{},\"morsels\":{}}}}}",
                escape_json(span.stage),
                micros(offset_ns + span.start_ns),
                micros(span.dur_ns),
                span.worker,
                q,
                span.depth,
                span.tuples,
                span.morsels,
            ));
        }
    }
    tracks.sort_unstable();
    // Metadata events give each tid a human name and pin the track order.
    for (sort, &tid) in tracks.iter().enumerate() {
        let name = if tid == 0 {
            "coordinator".to_string()
        } else {
            format!("worker {tid}")
        };
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape_json(&name)
        ));
        events.push(format!(
            "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
             \"args\":{{\"sort_index\":{sort}}}}}"
        ));
    }
    events.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\
         \"args\":{\"name\":\"vida\"}}"
            .to_string(),
    );
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}",
        events.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::stage;

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn export_emits_one_track_per_worker() {
        let mut coord = QueryTrace::start();
        coord.begin(stage::FOLD);
        let mut w1 = QueryTrace::with_epoch(1, coord.epoch());
        w1.begin(stage::SCAN);
        w1.end_counted(5, 1);
        coord.end();
        coord.absorb(w1);
        let json = coord.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"fold\""));
        assert!(json.contains("\"name\":\"scan\""));
        assert!(json.contains("\"name\":\"coordinator\""));
        assert!(json.contains("\"name\":\"worker 1\""));
        assert!(json.contains("\"tuples\":5"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn workload_export_offsets_queries_on_one_timeline() {
        let mut q0 = QueryTrace::start();
        q0.begin(stage::SCAN);
        q0.end();
        let mut q1 = QueryTrace::start();
        q1.begin(stage::SCAN);
        q1.end();
        let json = chrome_trace_json(&[(0, &q0), (1_000_000, &q1)]);
        assert!(json.contains("\"query\":0"));
        assert!(json.contains("\"query\":1"));
    }
}
