//! `vida-trace` — observability for the ViDa engine: per-query span
//! tracing, an always-on atomic metrics registry, and consumers that turn
//! both into human- and machine-readable output.
//!
//! The crate is zero-dependency by design (the whole workspace builds
//! offline) and splits into three layers:
//!
//! * [`span`] — a per-track span recorder. Each worker records into its own
//!   [`QueryTrace`] buffer (no locks, no atomics on the hot path); the
//!   coordinator absorbs worker buffers at merge points, so tracing never
//!   serializes the morsel-driven execution path. Stage names are the
//!   static taxonomy in [`stage`].
//! * [`metrics`] — a process-wide [`MetricsRegistry`] of relaxed atomic
//!   counters and log2-bucket histograms: cache hits/misses/evictions and
//!   replica bytes, worker busy-vs-idle time and morsel-claim balance, and
//!   total kernel invocations. Cheap enough to stay on unconditionally.
//! * consumers — [`QueryTrace::explain_analyze`] renders the stage tree
//!   with wall time, tuples, and morsels; [`chrome`] exports Chrome
//!   trace-event JSON loadable in Perfetto / `chrome://tracing`, one track
//!   per worker.
//!
//! Per-query tracing is opt-in (the engine gates it behind
//! `JitOptions::trace`); when disabled every hook is an `Option` check and
//! the cost is indistinguishable from baseline.

pub mod chrome;
pub mod metrics;
pub mod span;

pub use chrome::chrome_trace_json;
pub use metrics::{global_metrics, Counter, Histogram, MetricsRegistry, MetricsSnapshot};
pub use span::{stage, QueryTrace, Span, StageTotals};
