//! The cache-layout cost model (ViDa §5, "Re-using and re-shaping results").
//!
//! The paper argues that a just-in-time engine should materialize *per-layout*
//! replicas of accessed fields — fully parsed values, binary-JSON
//! serializations, or positions-only maps — chosen by weighing **build cost**
//! (what it takes to create the replica on top of the raw parse the query
//! performs anyway), **storage footprint** (cache budget is the scarce
//! resource; eagerly caching fat nested objects pollutes it), and **expected
//! reuse** (workload locality is what makes any caching pay off).
//!
//! [`CostModel`] is that decision procedure. The exec pipeline records one
//! [`FieldObservation`] per touched field per query; the model folds them
//! into per-field [`FieldProfile`]s and answers three questions:
//!
//! - [`CostModel::choose_layout`] — which layout should this field's replica
//!   use *now*, given the observed reuse and the cache's byte pressure?
//! - [`CostModel::read_preference`] — in which order should
//!   `CacheManager::get_any` probe layouts when serving a warm read?
//! - [`CostModel::eviction_bonus`] — how much longer should this replica
//!   survive eviction than pure LRU would allow, given what rebuilding it
//!   would cost?
//!
//! All scores are expressed in the paper's *fetch units*: `1.0` is one
//! buffer-pool-resident attribute fetch in a loaded DBMS (the same unit as
//! `InputPlugin::field_cost_factor`). The model is pure arithmetic over the
//! recorded statistics — deterministic, lock-cheap, and unit-testable
//! without an engine attached.
//!
//! # Example
//!
//! ```
//! use vida_optimizer::{CostModel, FieldObservation};
//! use vida_cache::Layout;
//!
//! let model = CostModel::new();
//! // A fat nested column: parsed values are ~700 B/row, binary JSON ~220 B.
//! let obs = FieldObservation {
//!     rows: 1_000,
//!     avg_value_bytes: 700.0,
//!     avg_binary_bytes: 220.0,
//!     raw_cost_factor: 4.0,
//!     has_spans: true,
//! };
//! for _ in 0..4 {
//!     model.observe("Regions", "payload", obs); // four queries touch it
//! }
//! // With reuse established and the cache under some pressure, the model
//! // trades the decode cost of binary JSON for the ~3x smaller footprint
//! // instead of polluting the cache with parsed values.
//! assert_eq!(model.choose_layout("Regions", "payload", 0.3), Layout::BinaryJson);
//! ```

use std::collections::HashMap;
use vida_cache::Layout;
use vida_types::sync::RwLock;

/// Per-row byte footprint of a positions-only replica: one `(start, end)`
/// pair (`CachedData::Positions` stores `(u64, u64)`).
const POSITIONS_BYTES_PER_ROW: f64 = 16.0;

/// Tuning knobs for [`CostModel`]. The defaults reproduce the paper's
/// qualitative regime: hot scalar fields cache as parsed values, fat nested
/// fields as binary JSON, and wide text fields degrade to positions-only
/// replicas once the cache budget is under pressure.
#[derive(Debug, Clone, Copy)]
pub struct CostModelConfig {
    /// Storage rent in fetch units charged per byte of replica footprint at
    /// full cache pressure (scaled down when the cache is empty). Higher
    /// values push the model toward compact layouts sooner.
    pub byte_rent: f64,
    /// Rent floor: even an empty cache charges `byte_rent * rent_floor` per
    /// byte, so unbounded footprints never look free.
    pub rent_floor: f64,
    /// Expected future reuses are capped at this horizon so one hot streak
    /// cannot make a replica look infinitely valuable.
    pub reuse_horizon: f64,
}

impl Default for CostModelConfig {
    fn default() -> Self {
        CostModelConfig {
            byte_rent: 0.03,
            rent_floor: 0.1,
            reuse_horizon: 16.0,
        }
    }
}

/// One query's worth of access evidence for a single `(dataset, field)`,
/// reported by the exec pipeline after it materialized the column.
#[derive(Debug, Clone, Copy)]
pub struct FieldObservation {
    /// Rows in the column (retrieval units of the dataset).
    pub rows: u64,
    /// Average per-row footprint of a parsed-values replica, in bytes
    /// (`Value::approx_bytes` over a sample).
    pub avg_value_bytes: f64,
    /// Average per-row footprint of a binary-JSON replica, in bytes
    /// (including the per-row buffer overhead the cache accounts for).
    pub avg_binary_bytes: f64,
    /// The input plugin's relative cost of fetching this field fresh from
    /// the raw file (`InputPlugin::field_cost_factor`; 1.0 = loaded DBMS).
    pub raw_cost_factor: f64,
    /// Whether the format can report raw byte spans for this field — the
    /// prerequisite for a positions-only replica.
    pub has_spans: bool,
}

/// Accumulated statistics for one `(dataset, field)`.
#[derive(Debug, Clone, Copy)]
pub struct FieldProfile {
    /// Queries that touched the field so far (the reuse signal).
    pub touches: u64,
    /// Latest observed row count.
    pub rows: u64,
    /// Latest observed per-row parsed-values footprint.
    pub avg_value_bytes: f64,
    /// Latest observed per-row binary-JSON footprint.
    pub avg_binary_bytes: f64,
    /// Latest observed raw fetch cost factor.
    pub raw_cost_factor: f64,
    /// Whether positions-only replicas are feasible for this field.
    pub has_spans: bool,
}

impl FieldProfile {
    fn from_observation(obs: &FieldObservation) -> Self {
        FieldProfile {
            touches: 1,
            rows: obs.rows,
            avg_value_bytes: obs.avg_value_bytes,
            avg_binary_bytes: obs.avg_binary_bytes,
            raw_cost_factor: obs.raw_cost_factor,
            has_spans: obs.has_spans,
        }
    }

    fn absorb(&mut self, obs: &FieldObservation) {
        self.touches += 1;
        self.rows = obs.rows;
        // Exponential smoothing keeps the profile stable while letting the
        // format's costs drift (posmaps populate, files change).
        self.avg_value_bytes = 0.5 * self.avg_value_bytes + 0.5 * obs.avg_value_bytes;
        self.avg_binary_bytes = 0.5 * self.avg_binary_bytes + 0.5 * obs.avg_binary_bytes;
        self.raw_cost_factor = 0.5 * self.raw_cost_factor + 0.5 * obs.raw_cost_factor;
        // Sticky once false: span support is reported per plugin, but a
        // field can be infeasible anyway (optional JSON fields have no
        // span in rows that omit them) — see `mark_spans_infeasible`.
        self.has_spans = self.has_spans && obs.has_spans;
    }
}

/// Cost-model-driven cache layout selection (see the module docs).
#[derive(Default)]
pub struct CostModel {
    cfg: CostModelConfig,
    profiles: RwLock<HashMap<(String, String), FieldProfile>>,
    /// Cache budget in bytes (0 = unknown). When known, a candidate
    /// replica's rent includes the pressure the replica would *itself*
    /// create — a layout that would fill the cache charges itself full
    /// rent, which keeps decisions stable instead of oscillating with the
    /// footprint of whatever was last written.
    budget_bytes: std::sync::atomic::AtomicU64,
    /// Plan-optimizer statistics (distinct sketches + predicate counters),
    /// fed from the same pipeline hooks that record `FieldObservation`s.
    sketch: crate::sketch::StatsSketch,
}

/// The layouts the engine will actually materialize replicas in. `Text` is
/// excluded: it does not round-trip typed values (`"3"` rehydrates as a
/// string, not an int), so it stays an output/debug layout only.
pub const STORABLE_LAYOUTS: [Layout; 3] = [Layout::Values, Layout::BinaryJson, Layout::Positions];

impl CostModel {
    /// A model with the default configuration.
    pub fn new() -> Self {
        CostModel::default()
    }

    /// A model with explicit tuning knobs.
    pub fn with_config(cfg: CostModelConfig) -> Self {
        CostModel {
            cfg,
            ..CostModel::default()
        }
    }

    pub fn config(&self) -> CostModelConfig {
        self.cfg
    }

    /// Fold one query's evidence for `(dataset, field)` into the model.
    pub fn observe(&self, dataset: &str, field: &str, obs: FieldObservation) {
        self.profiles
            .write()
            .entry((dataset.to_string(), field.to_string()))
            .and_modify(|p| p.absorb(&obs))
            .or_insert_with(|| FieldProfile::from_observation(&obs));
    }

    /// Record that positions-only replicas cannot represent this field
    /// (some rows have no byte span — e.g. optional JSON fields). The flag
    /// is sticky: later observations never resurrect `Positions` as a
    /// candidate, so the engine does not retry a doomed build every query.
    pub fn mark_spans_infeasible(&self, dataset: &str, field: &str) {
        if let Some(p) = self
            .profiles
            .write()
            .get_mut(&(dataset.to_string(), field.to_string()))
        {
            p.has_spans = false;
        }
    }

    /// Snapshot of the accumulated profile, if the field was ever observed.
    pub fn profile(&self, dataset: &str, field: &str) -> Option<FieldProfile> {
        self.profiles
            .read()
            .get(&(dataset.to_string(), field.to_string()))
            .copied()
    }

    /// Number of `(dataset, field)` pairs the model has evidence for.
    pub fn fields_tracked(&self) -> usize {
        self.profiles.read().len()
    }

    /// Forget everything (benchmark phase boundaries).
    pub fn clear(&self) {
        self.profiles.write().clear();
        self.sketch.clear();
    }

    /// The plan-optimizer statistics registry (distinct-count sketches and
    /// predicate hit counters) carried alongside the layout profiles.
    pub fn sketch(&self) -> &crate::sketch::StatsSketch {
        &self.sketch
    }

    /// Tell the model the cache budget so scores can include the pressure a
    /// candidate replica would itself create (the exec pipeline sets this
    /// from `CacheManager::budget_bytes`; 0 disables the self term).
    pub fn set_budget_bytes(&self, budget: u64) {
        self.budget_bytes
            .store(budget, std::sync::atomic::Ordering::Relaxed);
    }

    /// The configured cache budget (0 = unknown).
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Per-row cost of serving one warm read from a replica in `layout`
    /// (clone for values, decode for binary JSON, an exact-seek raw-file
    /// parse for positions). Decode and re-parse costs scale with the
    /// observed field width: positions-only replicas of fat nested objects
    /// pay the full text parse on every reuse, which is exactly why the
    /// paper prefers binary JSON for them.
    pub fn access_cost(layout: Layout, p: &FieldProfile) -> f64 {
        match layout {
            Layout::Values => 0.2,
            Layout::BinaryJson => 0.5 + 0.002 * p.avg_binary_bytes,
            Layout::Positions => 0.8 + 0.003 * p.avg_value_bytes,
            Layout::Text => 0.5 + 0.008 * p.avg_value_bytes,
        }
    }

    /// Per-row cost of building a replica in `layout`, on top of the raw
    /// parse the query performs anyway.
    pub fn build_cost(layout: Layout) -> f64 {
        match layout {
            Layout::Values => 0.2,
            Layout::BinaryJson => 1.0,
            Layout::Positions => 0.05,
            Layout::Text => 0.8,
        }
    }

    /// Estimated per-row byte footprint of a replica in `layout`.
    pub fn per_row_bytes(p: &FieldProfile, layout: Layout) -> f64 {
        match layout {
            Layout::Values => p.avg_value_bytes,
            Layout::BinaryJson => p.avg_binary_bytes,
            Layout::Positions => POSITIONS_BYTES_PER_ROW,
            // Text of a value is roughly the parsed footprint for scalars.
            Layout::Text => p.avg_value_bytes,
        }
    }

    /// Net benefit, in fetch units, of holding a replica of this field in
    /// `layout`: expected reuse savings minus build cost minus storage rent.
    /// `pressure` is the cache's byte pressure in `[0, 1]`
    /// (`used_bytes / budget_bytes`).
    pub fn score(&self, p: &FieldProfile, layout: Layout, pressure: f64) -> f64 {
        // Expected future reuses ≈ observed touches (workload locality),
        // capped at the horizon.
        let reuse = (p.touches as f64).min(self.cfg.reuse_horizon);
        let save = p.raw_cost_factor - Self::access_cost(layout, p);
        // Rent is charged at the pressure the cache would be under *with*
        // this replica in it: ambient pressure plus the replica's own
        // budget fraction (when the budget is known). Without the self
        // term, a near-budget-sized replica looks cheap whenever the cache
        // happens to be empty, and decisions oscillate.
        let per_row = Self::per_row_bytes(p, layout);
        let self_fraction = match self.budget_bytes() {
            0 => 0.0,
            b => p.rows as f64 * per_row / b as f64,
        };
        let effective = (pressure.clamp(0.0, 1.0) + self_fraction).min(1.0);
        let rent = self.cfg.byte_rent * (self.cfg.rent_floor + effective) * per_row;
        p.rows as f64 * (reuse * save - Self::build_cost(layout) - rent)
    }

    /// Feasible storable layouts for a profile (`Positions` needs spans).
    fn candidates(p: &FieldProfile) -> impl Iterator<Item = Layout> + '_ {
        STORABLE_LAYOUTS
            .into_iter()
            .filter(|l| *l != Layout::Positions || p.has_spans)
    }

    /// The layout the field's replica should use, given current evidence and
    /// cache pressure. Unknown fields default to `Values` (the legacy
    /// behaviour before the model existed).
    pub fn choose_layout(&self, dataset: &str, field: &str, pressure: f64) -> Layout {
        let Some(p) = self.profile(dataset, field) else {
            return Layout::Values;
        };
        // Strict-greater fold: ties break toward the earlier
        // (cheaper-to-serve) layout in STORABLE_LAYOUTS order.
        let mut best = (Layout::Values, f64::NEG_INFINITY);
        for l in Self::candidates(&p) {
            let s = self.score(&p, l, pressure);
            if s > best.1 {
                best = (l, s);
            }
        }
        best.0
    }

    /// Layout probe order for `CacheManager::get_any`: the chosen layout
    /// first (it is the replica the model is steering the cache toward),
    /// then the remaining storable layouts by ascending serving cost, so any
    /// replica that exists can still be used.
    pub fn read_preference(&self, dataset: &str, field: &str, pressure: f64) -> Vec<Layout> {
        let chosen = self.choose_layout(dataset, field, pressure);
        let mut order = vec![chosen];
        // STORABLE_LAYOUTS is already in ascending order of baseline serving
        // cost (values < binary JSON < positions).
        order.extend(STORABLE_LAYOUTS.into_iter().filter(|l| *l != chosen));
        order
    }

    /// Eviction bonus, in LRU clock ticks, for a replica of this field in
    /// `layout`: replicas that are expensive to rebuild (a fresh raw parse
    /// plus the build step) survive as if they had been touched more
    /// recently. Bounded so no replica becomes unevictable.
    pub fn eviction_bonus(&self, p: &FieldProfile, layout: Layout) -> f64 {
        let per_row = p.raw_cost_factor + Self::build_cost(layout);
        (p.rows as f64 * per_row / EVICTION_SCALE).min(MAX_EVICTION_BONUS)
    }
}

/// Fetch units per LRU tick when converting rebuild cost into an eviction
/// bonus: rebuilding 1k rows of a 3x-cost column buys ~3 ticks of survival.
const EVICTION_SCALE: f64 = 1_000.0;
/// Upper bound on the eviction bonus, in ticks.
const MAX_EVICTION_BONUS: f64 = 64.0;

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(
        rows: u64,
        avg_value_bytes: f64,
        avg_binary_bytes: f64,
        raw: f64,
        spans: bool,
    ) -> FieldObservation {
        FieldObservation {
            rows,
            avg_value_bytes,
            avg_binary_bytes,
            raw_cost_factor: raw,
            has_spans: spans,
        }
    }

    #[test]
    fn unknown_fields_default_to_values() {
        let m = CostModel::new();
        assert_eq!(m.choose_layout("d", "f", 0.0), Layout::Values);
        assert_eq!(m.read_preference("d", "f", 0.0)[0], Layout::Values);
    }

    #[test]
    fn hot_scalar_fields_cache_as_values() {
        let m = CostModel::new();
        for _ in 0..4 {
            m.observe("Patients", "age", obs(1_000, 8.0, 33.0, 3.0, true));
        }
        assert_eq!(m.choose_layout("Patients", "age", 0.0), Layout::Values);
        assert_eq!(m.choose_layout("Patients", "age", 0.9), Layout::Values);
    }

    #[test]
    fn fat_nested_fields_cache_as_binary_json() {
        let m = CostModel::new();
        for _ in 0..4 {
            m.observe("Regions", "payload", obs(1_000, 700.0, 220.0, 4.0, true));
        }
        assert_eq!(
            m.choose_layout("Regions", "payload", 0.3),
            Layout::BinaryJson
        );
    }

    #[test]
    fn wide_text_fields_degrade_to_positions_under_pressure() {
        let m = CostModel::new();
        // A wide string column, touched twice, on a span-capable format.
        m.observe("Notes", "body", obs(1_000, 180.0, 190.0, 3.0, true));
        m.observe("Notes", "body", obs(1_000, 180.0, 190.0, 3.0, true));
        // Empty cache: parsed values still win.
        assert_eq!(m.choose_layout("Notes", "body", 0.0), Layout::Values);
        // Full cache: footprint rent dominates; carry positions only.
        assert_eq!(m.choose_layout("Notes", "body", 1.0), Layout::Positions);
    }

    #[test]
    fn positions_require_spans() {
        let m = CostModel::new();
        m.observe("Mem", "body", obs(1_000, 180.0, 190.0, 3.0, false));
        m.observe("Mem", "body", obs(1_000, 180.0, 190.0, 3.0, false));
        let l = m.choose_layout("Mem", "body", 1.0);
        assert_ne!(l, Layout::Positions, "no spans -> positions infeasible");
    }

    #[test]
    fn read_preference_leads_with_chosen_layout_and_covers_storable() {
        let m = CostModel::new();
        for _ in 0..4 {
            m.observe("Regions", "payload", obs(1_000, 700.0, 220.0, 4.0, true));
        }
        let pref = m.read_preference("Regions", "payload", 0.3);
        assert_eq!(pref[0], Layout::BinaryJson);
        for l in STORABLE_LAYOUTS {
            assert!(pref.contains(&l), "{l:?} missing from preference");
        }
        assert_eq!(pref.len(), STORABLE_LAYOUTS.len());
    }

    #[test]
    fn spans_infeasibility_is_sticky() {
        let m = CostModel::new();
        m.observe("J", "opt", obs(1_000, 180.0, 190.0, 3.0, true));
        m.observe("J", "opt", obs(1_000, 180.0, 190.0, 3.0, true));
        assert_eq!(m.choose_layout("J", "opt", 1.0), Layout::Positions);
        // The engine discovered a row without a span: positions are out,
        // and later (plugin-level `has_spans=true`) observations must not
        // resurrect them.
        m.mark_spans_infeasible("J", "opt");
        assert_ne!(m.choose_layout("J", "opt", 1.0), Layout::Positions);
        m.observe("J", "opt", obs(1_000, 180.0, 190.0, 3.0, true));
        assert!(!m.profile("J", "opt").unwrap().has_spans);
        assert_ne!(m.choose_layout("J", "opt", 1.0), Layout::Positions);
    }

    #[test]
    fn known_budget_charges_replicas_their_own_pressure() {
        // A column whose parsed-values replica would fill ~80% of the
        // budget: with the budget known, the model avoids it even when the
        // cache is currently empty (ambient pressure 0).
        let m = CostModel::new();
        m.observe("Notes", "body", obs(64, 184.0, 194.0, 1.7, true));
        assert_eq!(m.choose_layout("Notes", "body", 0.0), Layout::Values);
        m.set_budget_bytes(16 << 10);
        assert_eq!(m.budget_bytes(), 16 << 10);
        assert_eq!(m.choose_layout("Notes", "body", 0.0), Layout::Positions);
    }

    #[test]
    fn profiles_accumulate_touches() {
        let m = CostModel::new();
        m.observe("d", "f", obs(10, 8.0, 33.0, 3.0, true));
        m.observe("d", "f", obs(10, 8.0, 33.0, 3.0, true));
        let p = m.profile("d", "f").unwrap();
        assert_eq!(p.touches, 2);
        assert_eq!(m.fields_tracked(), 1);
        m.clear();
        assert_eq!(m.fields_tracked(), 0);
    }

    #[test]
    fn scores_are_deterministic_and_reuse_monotone() {
        let m = CostModel::new();
        m.observe("d", "f", obs(100, 8.0, 33.0, 3.0, true));
        let p1 = m.profile("d", "f").unwrap();
        let s1 = m.score(&p1, Layout::Values, 0.0);
        assert_eq!(s1, m.score(&p1, Layout::Values, 0.0));
        m.observe("d", "f", obs(100, 8.0, 33.0, 3.0, true));
        let p2 = m.profile("d", "f").unwrap();
        assert!(
            m.score(&p2, Layout::Values, 0.0) > s1,
            "more touches must not lower the score"
        );
    }

    #[test]
    fn eviction_bonus_scales_with_rebuild_cost_and_is_bounded() {
        let m = CostModel::new();
        m.observe("d", "cheap", obs(100, 8.0, 33.0, 1.0, true));
        m.observe("d", "dear", obs(1_000_000, 8.0, 33.0, 4.0, true));
        let cheap = m.profile("d", "cheap").unwrap();
        let dear = m.profile("d", "dear").unwrap();
        let b_cheap = m.eviction_bonus(&cheap, Layout::Values);
        let b_dear = m.eviction_bonus(&dear, Layout::BinaryJson);
        assert!(b_cheap < b_dear);
        assert!(b_dear <= 64.0, "bonus must stay bounded");
    }
}
