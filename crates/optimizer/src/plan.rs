//! Plan-level cost-based optimization: join-order search over estimated
//! cardinalities.
//!
//! [`reorder_joins`] takes the left-deepened input of a `Reduce` (the shape
//! the exec pipeline lowers), decomposes it into scan leaves plus a pool of
//! conjuncts, estimates per-leaf and per-join cardinalities from a
//! [`PlanStats`] source (base row counts, distinct sketches, observed
//! predicate selectivities), and greedily rebuilds the cheapest left-deep
//! order. Because the streaming pipelines always build a hash table on the
//! *right* side of each join, choosing the join order *is* choosing the
//! build sides: the greedy step picks the smallest estimated relation as
//! the first build.
//!
//! ## When reordering is skipped
//!
//! Reordering changes which tuples each conjunct is evaluated against, so
//! it is only applied when the result is provably invariant:
//!
//! - the reduce monoid is order-insensitive (`Primitive` or `Set`) — the
//!   caller gates this;
//! - every conjunct in the pool is **total-safe**: a comparison
//!   (`= != < <= > >=`) or boolean literal over variables, single-level
//!   projections, and scalar constants. Under the engine's null semantics
//!   those never error (ordered comparisons with null are `false`, `=`/`!=`
//!   treat null as a comparable value), so evaluating them against a
//!   different tuple set cannot introduce or suppress an error;
//! - the spine is pure scans/selects/joins (no `Unnest`), with 2–8 leaves,
//!   and every leaf has a known base cardinality.
//!
//! Anything else returns the plan untouched with
//! [`PlanOptReport::eligible`] `= false` — correctness is never traded for
//! coverage.

use std::collections::HashMap;

use vida_algebra::lower::{conjoin_all, split_conjuncts, UNIT_DATASET};
use vida_algebra::Plan;
use vida_lang::{BinOp, Expr};
use vida_types::Value;

/// Maximum number of scan leaves the greedy search will consider. Beyond
/// this the O(n²) pairwise scan still works, but plans that large never
/// come out of the front end; bail rather than trust unexercised code.
const MAX_LEAVES: usize = 8;

/// Default selectivities when no observed statistics exist for a conjunct.
const SEL_RANGE: f64 = 1.0 / 3.0;
const SEL_NE: f64 = 0.9;
const SEL_UNKNOWN: f64 = 0.5;

/// Statistics source for cardinality estimation. The exec crate adapts its
/// catalog + [`crate::CostModel`] sketches to this; tests use a plain map.
pub trait PlanStats {
    /// Base row count of a dataset (`None` = unknown → reordering bails).
    fn base_rows(&self, dataset: &str) -> Option<f64>;
    /// Estimated distinct count of a field (`None` = no sketch yet).
    fn distinct(&self, dataset: &str, field: &str) -> Option<f64>;
    /// Observed pass rate of a predicate, keyed by display string.
    fn predicate_selectivity(&self, predicate: &str) -> Option<f64>;
}

/// Map-backed [`PlanStats`] for tests and offline experiments.
#[derive(Default)]
pub struct TableStats {
    pub rows: HashMap<String, f64>,
    pub distincts: HashMap<(String, String), f64>,
    pub selectivities: HashMap<String, f64>,
}

impl TableStats {
    pub fn with_rows(pairs: &[(&str, f64)]) -> Self {
        TableStats {
            rows: pairs.iter().map(|(d, r)| (d.to_string(), *r)).collect(),
            ..TableStats::default()
        }
    }
}

impl PlanStats for TableStats {
    fn base_rows(&self, dataset: &str) -> Option<f64> {
        self.rows.get(dataset).copied()
    }
    fn distinct(&self, dataset: &str, field: &str) -> Option<f64> {
        self.distincts
            .get(&(dataset.to_string(), field.to_string()))
            .copied()
    }
    fn predicate_selectivity(&self, predicate: &str) -> Option<f64> {
        self.selectivities.get(predicate).copied()
    }
}

/// What the optimizer did (or why it declined).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PlanOptReport {
    /// Number of leaves moved away from their original position (0 when
    /// the original order was already optimal).
    pub joins_reordered: u32,
    /// Estimated output cardinality of the chosen order (rows before the
    /// reduce head), 0.0 when ineligible.
    pub estimated_rows: f64,
    /// False when the plan shape / conjunct pool / statistics made
    /// reordering unsafe or impossible — the plan was returned untouched.
    pub eligible: bool,
}

/// One scan leaf of the decomposed spine.
struct Leaf {
    dataset: String,
    binding: String,
    /// Conjuncts referencing only this leaf (plus free-variable-less ones
    /// parked on the first leaf).
    local: Vec<Expr>,
    /// Base rows × Π local selectivities.
    card: f64,
}

/// A conjunct spanning ≥2 leaves, with the leaf indices it references.
struct CrossConjunct {
    expr: Expr,
    leaves: Vec<usize>,
}

/// Cost-based join reordering (see the module docs). Returns the possibly
/// rebuilt plan and a report; when `report.eligible` is false (or
/// `joins_reordered` is 0) the returned plan is structurally identical to
/// the input.
pub fn reorder_joins(plan: &Plan, stats: &dyn PlanStats) -> (Plan, PlanOptReport) {
    let untouched = || (plan.clone(), PlanOptReport::default());

    // ---- Decompose the left-deep spine into leaves + conjunct pool. ----
    let mut scans: Vec<(String, String)> = Vec::new(); // (dataset, binding)
    let mut pool: Vec<Expr> = Vec::new();
    if !decompose(plan, &mut scans, &mut pool) {
        return untouched();
    }
    if scans.len() < 2 || scans.len() > MAX_LEAVES {
        return untouched();
    }
    if scans.iter().any(|(d, _)| d == UNIT_DATASET) {
        return untouched();
    }
    // Reordering moves conjuncts across evaluation sets; require totality.
    if !pool.iter().all(total_safe) {
        return untouched();
    }

    // ---- Build leaves with known base cardinalities. ----
    let binding_of: HashMap<&str, usize> = scans
        .iter()
        .enumerate()
        .map(|(i, (_, b))| (b.as_str(), i))
        .collect();
    let mut leaves: Vec<Leaf> = Vec::with_capacity(scans.len());
    for (dataset, binding) in &scans {
        let Some(rows) = stats.base_rows(dataset) else {
            return untouched();
        };
        leaves.push(Leaf {
            dataset: dataset.clone(),
            binding: binding.clone(),
            local: Vec::new(),
            card: rows.max(1.0),
        });
    }

    // ---- Assign conjuncts: local to one leaf, or cross-leaf. ----
    let mut cross: Vec<CrossConjunct> = Vec::new();
    for c in pool {
        let fv = c.free_vars();
        let mut touched: Vec<usize> = Vec::new();
        for v in &fv {
            match binding_of.get(v.as_str()) {
                Some(&i) if !touched.contains(&i) => touched.push(i),
                Some(_) => {}
                // A free variable that is not a leaf binding (outer dataset
                // reference) — evaluation depends on context we don't model.
                None => return untouched(),
            }
        }
        match touched.len() {
            // No free variables: constant predicate, park on the first leaf.
            0 => leaves[0].local.push(c),
            1 => {
                let i = touched[0];
                leaves[i].card *= local_selectivity(&c, &leaves[i], stats);
                leaves[i].local.push(c);
            }
            _ => {
                touched.sort_unstable();
                cross.push(CrossConjunct {
                    expr: c,
                    leaves: touched,
                });
            }
        }
    }
    for l in &mut leaves {
        l.card = l.card.max(1.0);
    }

    // ---- Greedy order search over estimated cardinalities. ----
    let n = leaves.len();
    let order = greedy_order(&leaves, &cross, stats);
    debug_assert_eq!(order.len(), n);
    let est = estimate_order(&order, &leaves, &cross, stats);

    let moved = order.iter().enumerate().filter(|&(k, &i)| k != i).count() as u32;
    if moved == 0 {
        return (
            plan.clone(),
            PlanOptReport {
                joins_reordered: 0,
                estimated_rows: est,
                eligible: true,
            },
        );
    }

    // ---- Rebuild a left-deep plan in the chosen order. ----
    let rebuilt = rebuild(&order, leaves, cross);
    (
        rebuilt,
        PlanOptReport {
            joins_reordered: moved,
            estimated_rows: est,
            eligible: true,
        },
    )
}

/// Walk a left-deep select/join/scan spine, collecting `(dataset, binding)`
/// leaves in binding order and all predicates into `pool`. Returns false on
/// any shape reordering can't handle (`Unnest`, nested `Reduce`).
fn decompose(plan: &Plan, scans: &mut Vec<(String, String)>, pool: &mut Vec<Expr>) -> bool {
    match plan {
        Plan::Scan { dataset, binding } => {
            scans.push((dataset.clone(), binding.clone()));
            true
        }
        Plan::Select { input, predicate } => {
            split_conjuncts(predicate, pool);
            decompose(input, scans, pool)
        }
        Plan::Join {
            left,
            right,
            predicate,
        } => {
            split_conjuncts(predicate, pool);
            decompose(left, scans, pool) && decompose(right, scans, pool)
        }
        Plan::Unnest { .. } | Plan::Reduce { .. } => false,
    }
}

/// A conjunct is total-safe when moving it to a different evaluation set
/// cannot change error behavior: comparisons and boolean literals over
/// variables, single-level projections, and scalar constants (see module
/// docs for the null-semantics argument).
fn total_safe(e: &Expr) -> bool {
    fn safe_operand(e: &Expr) -> bool {
        match e {
            Expr::Const(v) => matches!(
                v,
                Value::Null | Value::Bool(_) | Value::Int(_) | Value::Float(_) | Value::Str(_)
            ),
            Expr::Var(_) => true,
            Expr::Proj(inner, _) => matches!(inner.as_ref(), Expr::Var(_)),
            _ => false,
        }
    }
    match e {
        Expr::Const(Value::Bool(_)) => true,
        Expr::BinOp(op, l, r) => {
            matches!(
                op,
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
            ) && safe_operand(l)
                && safe_operand(r)
        }
        _ => false,
    }
}

/// Estimated pass rate of a single-leaf conjunct: observed counters first,
/// then a distinct-sketch / shape heuristic.
fn local_selectivity(c: &Expr, leaf: &Leaf, stats: &dyn PlanStats) -> f64 {
    if let Some(s) = stats.predicate_selectivity(&c.to_string()) {
        return s.clamp(0.0, 1.0).max(1.0 / leaf.card.max(1.0));
    }
    match c {
        Expr::BinOp(BinOp::Eq, l, r) => {
            // `x.f = const` → 1/distinct(f), defaulting to 1/rows.
            let d = [l.as_ref(), r.as_ref()]
                .iter()
                .find_map(|e| proj_field(e).and_then(|f| stats.distinct(&leaf.dataset, f)))
                .unwrap_or(leaf.card);
            (1.0 / d.max(1.0)).clamp(1.0 / leaf.card.max(1.0), 1.0)
        }
        Expr::BinOp(BinOp::Ne, ..) => SEL_NE,
        Expr::BinOp(BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge, ..) => SEL_RANGE,
        _ => SEL_UNKNOWN,
    }
}

/// `x.f` → `Some("f")`.
fn proj_field(e: &Expr) -> Option<&str> {
    match e {
        Expr::Proj(inner, field) if matches!(inner.as_ref(), Expr::Var(_)) => Some(field),
        _ => None,
    }
}

/// Selectivity of one cross conjunct once all its leaves are bound.
fn join_selectivity(c: &CrossConjunct, leaves: &[Leaf], stats: &dyn PlanStats) -> f64 {
    match &c.expr {
        Expr::BinOp(BinOp::Eq, l, r) => {
            // Equi-join: 1 / max(distinct(left key), distinct(right key)),
            // falling back to the (filtered) leaf cardinality per side.
            let mut dmax = 1.0f64;
            for side in [l.as_ref(), r.as_ref()] {
                if let Expr::Proj(inner, field) = side {
                    if let Expr::Var(b) = inner.as_ref() {
                        if let Some(i) = leaves.iter().position(|lf| &lf.binding == b) {
                            let d = stats
                                .distinct(&leaves[i].dataset, field)
                                .unwrap_or(leaves[i].card);
                            dmax = dmax.max(d);
                        }
                    }
                }
            }
            1.0 / dmax.max(1.0)
        }
        Expr::BinOp(BinOp::Ne, ..) => SEL_NE,
        Expr::BinOp(BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge, ..) => {
            // Band/range join.
            0.25
        }
        _ => SEL_UNKNOWN,
    }
}

/// Estimated cardinality of joining `joined_set` (cardinality `card`) with
/// leaf `j`, applying every cross conjunct that becomes fully bound.
fn extend_card(
    card: f64,
    joined: &[usize],
    j: usize,
    leaves: &[Leaf],
    cross: &[CrossConjunct],
    stats: &dyn PlanStats,
) -> f64 {
    let mut out = card * leaves[j].card;
    for c in cross {
        let bound_now = c.leaves.iter().all(|&i| i == j || joined.contains(&i));
        let bound_before = c.leaves.iter().all(|&i| joined.contains(&i));
        if bound_now && !bound_before {
            out *= join_selectivity(c, leaves, stats);
        }
    }
    out.max(1.0)
}

/// Greedy smallest-intermediate-first order. Deterministic: ties break on
/// smaller leaf cardinality, then original position.
fn greedy_order(leaves: &[Leaf], cross: &[CrossConjunct], stats: &dyn PlanStats) -> Vec<usize> {
    let n = leaves.len();
    // Seed: the ordered pair (probe, build) with the smallest join output;
    // ties prefer the smaller build side, then original positions.
    let mut best: Option<(f64, f64, usize, usize)> = None;
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            let card = extend_card(leaves[a].card, &[a], b, leaves, cross, stats);
            let key = (card, leaves[b].card, a, b);
            let better = match &best {
                None => true,
                Some((c0, b0, a0, b1)) => (key.0, key.1, key.2, key.3) < (*c0, *b0, *a0, *b1),
            };
            if better {
                best = Some(key);
            }
        }
    }
    let (mut card, _, a, b) = best.expect("n >= 2");
    let mut order = vec![a, b];
    while order.len() < n {
        let mut next: Option<(f64, f64, usize)> = None;
        for (j, leaf) in leaves.iter().enumerate() {
            if order.contains(&j) {
                continue;
            }
            let c = extend_card(card, &order, j, leaves, cross, stats);
            let key = (c, leaf.card, j);
            if next.map_or(true, |k| key < k) {
                next = Some(key);
            }
        }
        let (c, _, j) = next.expect("unplaced leaf exists");
        card = c;
        order.push(j);
    }
    order
}

/// Estimated output cardinality of a full order.
fn estimate_order(
    order: &[usize],
    leaves: &[Leaf],
    cross: &[CrossConjunct],
    stats: &dyn PlanStats,
) -> f64 {
    let mut card = leaves[order[0]].card;
    let mut joined = vec![order[0]];
    for &j in &order[1..] {
        card = extend_card(card, &joined, j, leaves, cross, stats);
        joined.push(j);
    }
    card
}

/// Rebuild a left-deep plan in `order`: local conjuncts become `Select`s
/// directly above their scan (filtering before any build materializes),
/// cross conjuncts attach at the first join where all their leaves are
/// bound.
fn rebuild(order: &[usize], mut leaves: Vec<Leaf>, cross: Vec<CrossConjunct>) -> Plan {
    let leaf_plan = |leaf: &mut Leaf| -> Plan {
        let scan = Plan::Scan {
            dataset: std::mem::take(&mut leaf.dataset),
            binding: std::mem::take(&mut leaf.binding),
        };
        let local = std::mem::take(&mut leaf.local);
        if local.is_empty() {
            scan
        } else {
            Plan::Select {
                input: Box::new(scan),
                predicate: conjoin_all(local),
            }
        }
    };

    let mut used = vec![false; cross.len()];
    let mut bound: Vec<usize> = vec![order[0]];
    let mut plan = leaf_plan(&mut leaves[order[0]]);
    for &j in &order[1..] {
        bound.push(j);
        let mut preds: Vec<Expr> = Vec::new();
        for (k, c) in cross.iter().enumerate() {
            if !used[k] && c.leaves.iter().all(|i| bound.contains(i)) {
                used[k] = true;
                preds.push(c.expr.clone());
            }
        }
        plan = Plan::Join {
            left: Box::new(plan),
            right: Box::new(leaf_plan(&mut leaves[j])),
            predicate: conjoin_all(preds),
        };
    }
    debug_assert!(used.iter().all(|&u| u));
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use vida_lang::parse;

    fn scan(ds: &str, b: &str) -> Plan {
        Plan::Scan {
            dataset: ds.into(),
            binding: b.into(),
        }
    }

    fn join(l: Plan, r: Plan, pred: &str) -> Plan {
        Plan::Join {
            left: Box::new(l),
            right: Box::new(r),
            predicate: parse(pred).unwrap(),
        }
    }

    #[test]
    fn two_way_join_swaps_to_small_build_side() {
        // Fact ⋈ Dim with Fact as build side (right): swap so the tiny
        // dimension is built instead.
        let plan = join(scan("Dim", "d"), scan("Fact", "f"), "d.id = f.id");
        let stats = TableStats::with_rows(&[("Dim", 10.0), ("Fact", 100_000.0)]);
        let (out, report) = reorder_joins(&plan, &stats);
        assert!(report.eligible);
        assert_eq!(report.joins_reordered, 2);
        assert_eq!(out.bound_vars(), vec!["f".to_string(), "d".to_string()]);
    }

    #[test]
    fn misordered_three_way_reorders_to_smallest_intermediates() {
        // ((Dim ⋈ F1) ⋈ F2): building both facts is the worst order.
        let plan = join(
            join(scan("Dim", "d"), scan("F1", "a"), "d.id = a.id"),
            scan("F2", "b"),
            "a.id = b.id",
        );
        let stats = TableStats::with_rows(&[("Dim", 50.0), ("F1", 20_000.0), ("F2", 20_000.0)]);
        let (out, report) = reorder_joins(&plan, &stats);
        assert!(report.eligible);
        assert!(report.joins_reordered >= 1);
        // The large fact probes, the tiny dimension is the first build.
        assert_eq!(
            out.bound_vars(),
            vec!["a".to_string(), "d".to_string(), "b".to_string()]
        );
        assert!(report.estimated_rows >= 1.0);
    }

    #[test]
    fn already_optimal_plan_is_untouched() {
        let plan = join(scan("Fact", "f"), scan("Dim", "d"), "f.id = d.id");
        let stats = TableStats::with_rows(&[("Dim", 10.0), ("Fact", 100_000.0)]);
        let (out, report) = reorder_joins(&plan, &stats);
        assert!(report.eligible);
        assert_eq!(report.joins_reordered, 0);
        assert_eq!(out, plan);
    }

    #[test]
    fn local_conjuncts_move_below_the_build() {
        // A filter on the dimension sits at join level; after reordering it
        // must sit directly above the Dim scan so the build is filtered.
        let plan = Plan::Select {
            input: Box::new(join(scan("Dim", "d"), scan("Fact", "f"), "d.id = f.id")),
            predicate: parse("d.kind = 3").unwrap(),
        };
        let stats = TableStats::with_rows(&[("Dim", 10.0), ("Fact", 100_000.0)]);
        let (out, report) = reorder_joins(&plan, &stats);
        assert!(report.eligible && report.joins_reordered > 0);
        let Plan::Join { right, .. } = &out else {
            panic!("expected join root, got {out}");
        };
        let Plan::Select { input, predicate } = right.as_ref() else {
            panic!("expected filtered build side, got {right}");
        };
        assert_eq!(predicate.to_string(), "(d.kind = 3)");
        assert!(matches!(input.as_ref(), Plan::Scan { binding, .. } if binding == "d"));
    }

    #[test]
    fn selectivity_estimates_shift_the_order() {
        // Both relations same size, but an observed highly-selective filter
        // on B makes it the cheaper build side.
        let plan = Plan::Select {
            input: Box::new(join(scan("B", "b"), scan("A", "a"), "b.k = a.k")),
            predicate: parse("b.x = 1").unwrap(),
        };
        let mut stats = TableStats::with_rows(&[("A", 1_000.0), ("B", 1_000.0)]);
        stats.selectivities.insert("(b.x = 1)".to_string(), 0.001);
        let (out, report) = reorder_joins(&plan, &stats);
        assert!(report.eligible);
        assert_eq!(report.joins_reordered, 2);
        assert_eq!(out.bound_vars(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn distinct_sketch_drives_equi_join_selectivity() {
        // X joins Y on a low-distinct key (fan-out) and Z on a near-unique
        // key. Without sketches the two joins look identical and the
        // original order stands; with them the optimizer joins Z first.
        let plan = join(
            join(scan("X", "x"), scan("Y", "y"), "x.j = y.j"),
            scan("Z", "z"),
            "x.k = z.k",
        );
        let blind = TableStats::with_rows(&[("X", 1_000.0), ("Y", 1_000.0), ("Z", 1_000.0)]);
        let (_, base) = reorder_joins(&plan, &blind);
        assert!(base.eligible);
        assert_eq!(base.joins_reordered, 0);

        let mut stats = TableStats::with_rows(&[("X", 1_000.0), ("Y", 1_000.0), ("Z", 1_000.0)]);
        stats.distincts.insert(("X".into(), "j".into()), 10.0);
        stats.distincts.insert(("Y".into(), "j".into()), 10.0);
        stats.distincts.insert(("X".into(), "k".into()), 1_000.0);
        stats.distincts.insert(("Z".into(), "k".into()), 1_000.0);
        let (out, report) = reorder_joins(&plan, &stats);
        assert!(report.eligible);
        assert_eq!(report.joins_reordered, 2);
        assert_eq!(
            out.bound_vars(),
            vec!["x".to_string(), "z".to_string(), "y".to_string()]
        );
    }

    #[test]
    fn bails_on_unnest_unknown_rows_unsafe_conjuncts_and_unit() {
        let stats = TableStats::with_rows(&[("A", 10.0), ("B", 1_000.0)]);

        // Unnest anywhere in the spine.
        let with_unnest = join(
            Plan::Unnest {
                input: Box::new(scan("A", "a")),
                binding: "e".into(),
                path: parse("a.xs").unwrap(),
            },
            scan("B", "b"),
            "e.k = b.k",
        );
        assert!(!reorder_joins(&with_unnest, &stats).1.eligible);

        // Unknown base rows.
        let unknown = join(scan("A", "a"), scan("Mystery", "m"), "a.k = m.k");
        assert!(!reorder_joins(&unknown, &stats).1.eligible);

        // Arithmetic inside a conjunct is not total-safe (can overflow).
        let unsafe_pred = join(scan("A", "a"), scan("B", "b"), "a.k + 1 = b.k");
        assert!(!reorder_joins(&unsafe_pred, &stats).1.eligible);

        // Unit-dataset leaves never reorder.
        let mut stats2 = TableStats::with_rows(&[("A", 10.0), ("B", 1_000.0)]);
        stats2.rows.insert(UNIT_DATASET.to_string(), 1.0);
        let unit = join(scan(UNIT_DATASET, "u"), scan("B", "b"), "true");
        assert!(!reorder_joins(&unit, &stats2).1.eligible);

        // Single scan: nothing to reorder.
        assert!(!reorder_joins(&scan("A", "a"), &stats).1.eligible);
    }

    #[test]
    fn cross_join_without_connector_orders_by_size() {
        // Small already on the build (right) side → untouched.
        let stats = TableStats::with_rows(&[("Big", 10_000.0), ("Small", 3.0)]);
        let good = join(scan("Big", "b"), scan("Small", "s"), "true");
        let (_, report) = reorder_joins(&good, &stats);
        assert!(report.eligible);
        assert_eq!(report.joins_reordered, 0);

        // Big on the build side → swapped.
        let bad = join(scan("Small", "s"), scan("Big", "b"), "true");
        let (out, report) = reorder_joins(&bad, &stats);
        assert!(report.eligible);
        assert_eq!(report.joins_reordered, 2);
        assert_eq!(out.bound_vars(), vec!["b".to_string(), "s".to_string()]);
    }
}
