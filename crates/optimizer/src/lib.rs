//! # vida-optimizer
//!
//! A named rewrite-pass registry over algebra plans (ViDa §5).
//!
//! The paper's optimizer extends classical rule-based optimization with
//! format- and cache-aware decisions. This crate is the engine's decision
//! layer, in two halves:
//!
//! 1. **Plan rewrites** — each [`Pass`] is a pure `Plan -> Plan` function
//!    with a name, and an [`Optimizer`] applies a configured sequence. The
//!    default pipeline wraps the algebra rewrites (selection pushdown,
//!    select merging, selection-into-join) from `vida-algebra`.
//! 2. **Cache layout decisions** — the [`cost`] module's [`CostModel`]
//!    scores `(field, layout)` replica candidates from per-field access
//!    statistics recorded by the exec pipeline, deciding which layout each
//!    cached column replica should use (values, binary JSON, or
//!    positions-only — the paper's §5 "re-using and re-shaping results"),
//!    in which order `CacheManager::get_any` should probe layouts, and how
//!    much eviction slack a replica's rebuild cost buys it.
//! 3. **Plan-level cost-based optimization** — the [`sketch`] module's
//!    fixed-size distinct-count/selectivity sketches (fed from the same
//!    pipeline hooks as the cost model's `FieldObservation`s) and the
//!    [`plan`] module's [`plan::reorder_joins`] join-order search: greedy
//!    smallest-intermediate-first over estimated cardinalities, which also
//!    chooses hash-join build sides (the pipelines always build the right
//!    side of each join).

pub mod cost;
pub mod plan;
pub mod sketch;

pub use cost::{CostModel, CostModelConfig, FieldObservation, FieldProfile, STORABLE_LAYOUTS};
pub use plan::{reorder_joins, PlanOptReport, PlanStats, TableStats};
pub use sketch::{DistinctSketch, PredicateStats, StatsSketch};

use vida_algebra::{rewrite, Plan};

/// One named, pure rewrite pass.
pub struct Pass {
    name: &'static str,
    run: fn(&Plan) -> Plan,
}

impl Pass {
    pub fn new(name: &'static str, run: fn(&Plan) -> Plan) -> Self {
        Pass { name, run }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    pub fn apply(&self, plan: &Plan) -> Plan {
        (self.run)(plan)
    }
}

/// An ordered pass pipeline.
#[derive(Default)]
pub struct Optimizer {
    passes: Vec<Pass>,
}

impl Optimizer {
    /// An empty pipeline (identity optimizer).
    pub fn empty() -> Self {
        Optimizer::default()
    }

    /// The standard pipeline: the algebra rewrite rules to fixpoint.
    pub fn standard() -> Self {
        let mut o = Optimizer::empty();
        o.register(Pass::new("algebra-rewrites", rewrite));
        o
    }

    /// Append a pass to the pipeline.
    pub fn register(&mut self, pass: Pass) -> &mut Self {
        self.passes.push(pass);
        self
    }

    /// Registered pass names, in application order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(Pass::name).collect()
    }

    /// Run every pass in order.
    pub fn optimize(&self, plan: &Plan) -> Plan {
        let mut cur = plan.clone();
        for pass in &self.passes {
            cur = pass.apply(&cur);
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vida_algebra::lower;
    use vida_lang::parse;

    fn plan() -> Plan {
        lower(
            &parse("for { e <- Employees, d <- Departments, e.deptNo = d.id } yield sum 1")
                .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn empty_optimizer_is_identity() {
        let p = plan();
        assert_eq!(Optimizer::empty().optimize(&p), p);
    }

    #[test]
    fn standard_pipeline_applies_algebra_rewrites() {
        let p = plan();
        assert_eq!(Optimizer::standard().optimize(&p), rewrite(&p));
        assert_eq!(Optimizer::standard().pass_names(), vec!["algebra-rewrites"]);
    }

    #[test]
    fn custom_passes_run_in_order() {
        fn strip_selects(p: &Plan) -> Plan {
            match p {
                Plan::Select { input, .. } => strip_selects(input),
                Plan::Reduce {
                    input,
                    monoid,
                    head,
                } => Plan::Reduce {
                    input: Box::new(strip_selects(input)),
                    monoid: *monoid,
                    head: head.clone(),
                },
                other => other.clone(),
            }
        }
        let mut o = Optimizer::empty();
        o.register(Pass::new("strip-selects", strip_selects))
            .register(Pass::new("rewrites", rewrite));
        let out = o.optimize(&plan());
        assert!(!format!("{out}").contains("Select"));
    }
}
