//! Selectivity and distinct-count sketches — the per-field statistics that
//! feed the plan optimizer (join ordering, build-side choice, conjunct
//! ordering in fused select kernels).
//!
//! Two estimators, both fixed-size and dependency-free:
//!
//! - [`DistinctSketch`] — a probabilistic distinct counter in the
//!   HyperLogLog family: 256 one-byte registers indexed by the low bits of
//!   a 64-bit hash, each holding the maximum leading-zero rank seen. The
//!   estimate's relative standard error is ~`1.04/sqrt(256)` ≈ 6.5%, and
//!   inserts are idempotent, so re-observing the same column across queries
//!   never inflates the count.
//! - [`PredicateStats`] — exact hit/eval counters for one predicate,
//!   replayed from sampled scan rows. `selectivity()` is the observed pass
//!   rate.
//!
//! [`StatsSketch`] is the registry the exec pipeline feeds: distinct
//! sketches keyed by `(dataset, field)` (observed alongside the cost
//! model's `FieldObservation`s) and predicate counters keyed by the
//! predicate's canonical display string. All methods take `&self` —
//! interior locking mirrors [`crate::CostModel`].

use std::collections::HashMap;
use vida_types::sync::RwLock;
use vida_types::Value;

/// Registers in a [`DistinctSketch`]: 2^8, so the register index consumes
/// 8 hash bits and the rank the remaining 56.
const REGISTERS: usize = 256;

/// Bias-correction constant for 256 registers (`0.7213 / (1 + 1.079/m)`).
const ALPHA: f64 = 0.7213 / (1.0 + 1.079 / REGISTERS as f64);

/// SplitMix64 finalizer: a cheap, well-mixed, deterministic 64-bit hash.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over bytes, then finalized through [`mix64`].
fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    mix64(h)
}

/// Stable hash of a [`Value`] for distinct counting. Distinct values get
/// distinct hashes with overwhelming probability; equal values always hash
/// equally. (Cross-type numeric equality — `1 = 1.0` — hashes per-type,
/// which at worst overcounts by the overlap; fine for an estimator.)
pub fn hash_value(v: &Value) -> u64 {
    match v {
        Value::Null => mix64(0x6E75_6C6C),
        Value::Bool(b) => mix64(0xB001 ^ *b as u64),
        Value::Int(i) => mix64(0x1234_5678 ^ *i as u64),
        // Normalize -0.0 to 0.0 so semantically equal floats hash equally.
        Value::Float(f) => {
            let f = if *f == 0.0 { 0.0 } else { *f };
            mix64(0x000F_10A7 ^ f.to_bits())
        }
        Value::Str(s) => hash_bytes(s.as_bytes()),
        Value::Record(fields) => {
            let mut h = 0x005E_C08D_u64;
            for (n, fv) in fields {
                h = mix64(h ^ hash_bytes(n.as_bytes()) ^ hash_value(fv));
            }
            h
        }
        Value::Collection(kind, items) => {
            let mut h = mix64(0xC0_11EC ^ *kind as u64);
            for it in items {
                h = mix64(h ^ hash_value(it));
            }
            h
        }
        Value::Array { dims, data } => {
            let mut h = mix64(0x000A_88A7_u64 ^ dims.len() as u64);
            for d in dims {
                h = mix64(h ^ *d as u64);
            }
            for it in data {
                h = mix64(h ^ hash_value(it));
            }
            h
        }
    }
}

/// Fixed-size probabilistic distinct counter (see the module docs).
#[derive(Clone)]
pub struct DistinctSketch {
    registers: [u8; REGISTERS],
}

impl Default for DistinctSketch {
    fn default() -> Self {
        DistinctSketch {
            registers: [0; REGISTERS],
        }
    }
}

impl DistinctSketch {
    pub fn new() -> Self {
        DistinctSketch::default()
    }

    /// Insert a pre-hashed item. Idempotent: the registers only grow.
    pub fn insert_hash(&mut self, h: u64) {
        let idx = (h & (REGISTERS as u64 - 1)) as usize;
        // Rank = trailing-zero count of the remaining 56 bits, + 1 (capped
        // so an all-zero remainder stays in range).
        let rest = h >> 8;
        let rank = (rest.trailing_zeros() as u8).min(56) + 1;
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Insert a value (hashed via [`hash_value`]).
    pub fn insert(&mut self, v: &Value) {
        self.insert_hash(hash_value(v));
    }

    /// True when nothing was ever inserted.
    pub fn is_empty(&self) -> bool {
        self.registers.iter().all(|&r| r == 0)
    }

    /// Estimated distinct count, with the standard small-range (linear
    /// counting) correction — exact-ish for cardinalities well below the
    /// register count, ~6.5% relative error above it.
    pub fn estimate(&self) -> f64 {
        let m = REGISTERS as f64;
        let sum: f64 = self
            .registers
            .iter()
            .map(|&r| 1.0 / (1u64 << r) as f64)
            .sum();
        let raw = ALPHA * m * m / sum;
        let zeros = self.registers.iter().filter(|&&r| r == 0).count();
        if raw <= 2.5 * m && zeros > 0 {
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }

    /// Merge another sketch (register-wise max): the estimate of the union.
    pub fn merge(&mut self, other: &DistinctSketch) {
        for (a, b) in self.registers.iter_mut().zip(other.registers.iter()) {
            *a = (*a).max(*b);
        }
    }
}

/// Exact hit/eval counters for one predicate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredicateStats {
    /// Times the predicate was evaluated.
    pub evals: u64,
    /// Of those, times it passed.
    pub hits: u64,
}

impl PredicateStats {
    /// Record one evaluation outcome.
    pub fn record(&mut self, hit: bool) {
        self.evals += 1;
        self.hits += hit as u64;
    }

    /// Fold a batch of outcomes (`hits` of `evals` passed).
    pub fn observe(&mut self, hits: u64, evals: u64) {
        debug_assert!(hits <= evals);
        self.evals += evals;
        self.hits += hits;
    }

    /// Observed pass rate, `None` until at least one evaluation happened.
    pub fn selectivity(&self) -> Option<f64> {
        (self.evals > 0).then(|| self.hits as f64 / self.evals as f64)
    }
}

/// One field's distinct sketch plus the latest observed row count.
struct FieldSketch {
    sketch: DistinctSketch,
    rows: u64,
}

/// The registry the exec pipeline feeds (see the module docs). Lives inside
/// [`crate::CostModel`] so everything holding a cost model gets plan
/// statistics for free.
#[derive(Default)]
pub struct StatsSketch {
    fields: RwLock<HashMap<(String, String), FieldSketch>>,
    predicates: RwLock<HashMap<String, PredicateStats>>,
}

impl StatsSketch {
    pub fn new() -> Self {
        StatsSketch::default()
    }

    /// Fold one materialized column into the field's distinct sketch.
    /// Idempotent per distinct value, so repeated queries over the same
    /// data don't drift the estimate.
    pub fn observe_values(&self, dataset: &str, field: &str, vals: &[Value]) {
        let mut fields = self.fields.write();
        let entry = fields
            .entry((dataset.to_string(), field.to_string()))
            .or_insert_with(|| FieldSketch {
                sketch: DistinctSketch::new(),
                rows: 0,
            });
        for v in vals {
            entry.sketch.insert(v);
        }
        entry.rows = vals.len() as u64;
    }

    /// Estimated distinct count for `(dataset, field)`, clamped to the
    /// observed row count (a column can't have more distinct values than
    /// rows).
    pub fn distinct(&self, dataset: &str, field: &str) -> Option<f64> {
        let fields = self.fields.read();
        let fs = fields.get(&(dataset.to_string(), field.to_string()))?;
        if fs.sketch.is_empty() {
            return None;
        }
        Some(fs.sketch.estimate().min(fs.rows as f64).max(1.0))
    }

    /// Latest observed row count for `(dataset, field)`.
    pub fn rows(&self, dataset: &str, field: &str) -> Option<u64> {
        self.fields
            .read()
            .get(&(dataset.to_string(), field.to_string()))
            .map(|fs| fs.rows)
    }

    /// Fold a batch of evaluation outcomes for a predicate (keyed by its
    /// canonical display string).
    pub fn record_predicate(&self, predicate: &str, hits: u64, evals: u64) {
        if evals == 0 {
            return;
        }
        self.predicates
            .write()
            .entry(predicate.to_string())
            .or_default()
            .observe(hits, evals);
    }

    /// Observed pass rate of a predicate, `None` until it was ever replayed.
    pub fn predicate_selectivity(&self, predicate: &str) -> Option<f64> {
        self.predicates
            .read()
            .get(predicate)
            .and_then(PredicateStats::selectivity)
    }

    /// Number of fields with a distinct sketch.
    pub fn fields_sketched(&self) -> usize {
        self.fields.read().len()
    }

    /// Number of predicates with counters.
    pub fn predicates_tracked(&self) -> usize {
        self.predicates.read().len()
    }

    /// Forget everything (benchmark phase boundaries).
    pub fn clear(&self) {
        self.fields.write().clear();
        self.predicates.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// xorshift64* — the same seeded generator family the fuzzer uses.
    struct Rng(u64);
    impl Rng {
        fn new(seed: u64) -> Self {
            Rng(seed.max(1))
        }
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
        fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Pinned relative-error bound for the distinct estimator on the seeded
    /// distributions below (the sketch is deterministic, so this is a
    /// regression bound, not a statistical one).
    const REL_ERR: f64 = 0.2;

    fn rel_err(est: f64, truth: f64) -> f64 {
        (est - truth).abs() / truth.max(1.0)
    }

    fn estimate_of(vals: &[Value]) -> (f64, f64) {
        let mut s = DistinctSketch::new();
        let mut exact = std::collections::HashSet::new();
        for v in vals {
            s.insert(v);
            exact.insert(format!("{v}"));
        }
        (s.estimate(), exact.len() as f64)
    }

    #[test]
    fn constant_column_estimates_one() {
        let vals: Vec<Value> = (0..10_000).map(|_| Value::Int(7)).collect();
        let (est, truth) = estimate_of(&vals);
        assert_eq!(truth, 1.0);
        assert!((est - 1.0).abs() < 0.5, "est {est}");
    }

    #[test]
    fn all_distinct_column_within_bound() {
        for seed in [0xDEC0DEu64, 42, 7] {
            let mut rng = Rng::new(seed);
            let base = rng.below(1 << 30) as i64;
            let vals: Vec<Value> = (0..20_000).map(|i| Value::Int(base + i)).collect();
            let (est, truth) = estimate_of(&vals);
            assert_eq!(truth, 20_000.0);
            assert!(
                rel_err(est, truth) < REL_ERR,
                "seed {seed}: est {est} vs {truth}"
            );
        }
    }

    #[test]
    fn uniform_column_within_bound() {
        for seed in [0xDEC0DEu64, 42, 7] {
            let mut rng = Rng::new(seed);
            let vals: Vec<Value> = (0..50_000)
                .map(|_| Value::Int(rng.below(5_000) as i64))
                .collect();
            let (est, truth) = estimate_of(&vals);
            assert!(
                rel_err(est, truth) < REL_ERR,
                "seed {seed}: est {est} vs {truth}"
            );
        }
    }

    #[test]
    fn zipf_column_within_bound() {
        // Log-uniform draw ≈ zipf(1): heavy head, long tail of rare values.
        for seed in [0xDEC0DEu64, 42, 7] {
            let mut rng = Rng::new(seed);
            let n = 100_000f64;
            let vals: Vec<Value> = (0..30_000)
                .map(|_| Value::Int(n.powf(rng.unit()) as i64))
                .collect();
            let (est, truth) = estimate_of(&vals);
            assert!(
                rel_err(est, truth) < REL_ERR,
                "seed {seed}: est {est} vs {truth}"
            );
        }
    }

    #[test]
    fn string_and_mixed_type_columns_within_bound() {
        let mut rng = Rng::new(0xDEC0DE);
        let vals: Vec<Value> = (0..10_000)
            .map(|_| match rng.below(3) {
                0 => Value::str(format!("s{}", rng.below(700))),
                1 => Value::Int(rng.below(700) as i64),
                _ => Value::Null,
            })
            .collect();
        let (est, truth) = estimate_of(&vals);
        assert!(rel_err(est, truth) < REL_ERR, "est {est} vs {truth}");
    }

    #[test]
    fn inserts_are_idempotent_across_queries() {
        let vals: Vec<Value> = (0..1_000).map(|i| Value::Int(i % 37)).collect();
        let s = StatsSketch::new();
        s.observe_values("D", "k", &vals);
        let first = s.distinct("D", "k").unwrap();
        for _ in 0..5 {
            s.observe_values("D", "k", &vals);
        }
        assert_eq!(s.distinct("D", "k").unwrap(), first);
        assert_eq!(s.rows("D", "k"), Some(1_000));
    }

    #[test]
    fn merge_equals_union() {
        let mut a = DistinctSketch::new();
        let mut b = DistinctSketch::new();
        let mut u = DistinctSketch::new();
        for i in 0..5_000i64 {
            let v = Value::Int(i);
            if i % 2 == 0 {
                a.insert(&v);
            } else {
                b.insert(&v);
            }
            u.insert(&v);
        }
        a.merge(&b);
        assert_eq!(a.estimate(), u.estimate());
    }

    #[test]
    fn equal_floats_hash_equally() {
        assert_eq!(
            hash_value(&Value::Float(0.0)),
            hash_value(&Value::Float(-0.0))
        );
        assert_ne!(
            hash_value(&Value::Float(1.5)),
            hash_value(&Value::Float(2.5))
        );
    }

    #[test]
    fn predicate_counters_are_exact_on_replay() {
        // Replay a seeded outcome stream through both the incremental and
        // the batched API: the selectivity must be the exact pass rate.
        let mut rng = Rng::new(42);
        let outcomes: Vec<bool> = (0..10_000).map(|_| rng.below(100) < 23).collect();
        let truth_hits = outcomes.iter().filter(|&&b| b).count() as u64;

        let mut p = PredicateStats::default();
        for &o in &outcomes {
            p.record(o);
        }
        assert_eq!(p.evals, 10_000);
        assert_eq!(p.hits, truth_hits);
        assert_eq!(p.selectivity(), Some(truth_hits as f64 / 10_000.0));

        let s = StatsSketch::new();
        assert_eq!(s.predicate_selectivity("(p.age > 40)"), None);
        // Batched in uneven chunks — totals must match the per-outcome replay.
        let mut i = 0usize;
        let mut chunk = 1usize;
        while i < outcomes.len() {
            let end = (i + chunk).min(outcomes.len());
            let hits = outcomes[i..end].iter().filter(|&&b| b).count() as u64;
            s.record_predicate("(p.age > 40)", hits, (end - i) as u64);
            i = end;
            chunk = chunk * 2 + 1;
        }
        assert_eq!(
            s.predicate_selectivity("(p.age > 40)"),
            Some(truth_hits as f64 / 10_000.0)
        );
        assert_eq!(s.predicates_tracked(), 1);
        s.clear();
        assert_eq!(s.predicates_tracked(), 0);
        assert_eq!(s.fields_sketched(), 0);
    }

    #[test]
    fn distinct_is_clamped_to_rows_and_floored_at_one() {
        let s = StatsSketch::new();
        s.observe_values("D", "k", &[Value::Int(1), Value::Int(2)]);
        let d = s.distinct("D", "k").unwrap();
        assert!((1.0..=2.0).contains(&d), "{d}");
        assert_eq!(s.distinct("D", "missing"), None);
    }
}
