//! Binary dense-array container (stand-in for ROOT / FITS / NetCDF / HDF5
//! array data, ViDa §3.1).
//!
//! The paper's motivating sources include scientific array formats whose
//! defining properties are (i) binary encoding — per-element access cost is
//! *constant*, unlike text (§5) — and (ii) a choice of retrieval units:
//! element, row, column, or an `n × m` chunk. This module implements a
//! minimal such container:
//!
//! ```text
//! magic "VIDARR01" | elem_type u32 (0=i64, 1=f64) | ndims u32 | dims u64[ndims] | data LE
//! ```
//!
//! All multi-byte values are little-endian; data is row-major.

use crate::csv::FileRefresh;
use crate::stats::AccessStats;
use std::path::Path;
use std::sync::Arc;
use vida_io::{MapMode, RawData};
use vida_types::{Result, Schema, Type, Value, VidaError};

const MAGIC: &[u8; 8] = b"VIDARR01";

/// Element type tag stored in the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElemType {
    I64,
    F64,
}

impl ElemType {
    fn tag(self) -> u32 {
        match self {
            ElemType::I64 => 0,
            ElemType::F64 => 1,
        }
    }

    fn from_tag(tag: u32) -> Option<Self> {
        match tag {
            0 => Some(ElemType::I64),
            1 => Some(ElemType::F64),
            _ => None,
        }
    }

    pub fn to_type(self) -> Type {
        match self {
            ElemType::I64 => Type::Int,
            ElemType::F64 => Type::Float,
        }
    }
}

/// Serialize a dense array into the container format.
pub fn encode_array(elem: ElemType, dims: &[usize], data: &[Value]) -> Result<Vec<u8>> {
    let expected: usize = dims.iter().product();
    if data.len() != expected {
        return Err(VidaError::format(
            "<encode>",
            format!(
                "dims {dims:?} imply {expected} elements, got {}",
                data.len()
            ),
        ));
    }
    let mut out = Vec::with_capacity(16 + dims.len() * 8 + data.len() * 8);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&elem.tag().to_le_bytes());
    out.extend_from_slice(&(dims.len() as u32).to_le_bytes());
    for &d in dims {
        out.extend_from_slice(&(d as u64).to_le_bytes());
    }
    for v in data {
        match elem {
            ElemType::I64 => {
                let x = v
                    .as_i64()
                    .ok_or_else(|| VidaError::format("<encode>", format!("non-int {v}")))?;
                out.extend_from_slice(&x.to_le_bytes());
            }
            ElemType::F64 => {
                let x = v
                    .as_f64()
                    .ok_or_else(|| VidaError::format("<encode>", format!("non-float {v}")))?;
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
    }
    Ok(out)
}

/// A binary array file opened for querying.
pub struct ArrayFile {
    name: String,
    /// Raw bytes, memory-mapped when opened from disk with an owned-buffer
    /// fallback. Binary formats benefit doubly: elements decode straight
    /// from the mapped pages with no copy at all.
    data: RawData,
    elem: ElemType,
    dims: Vec<usize>,
    data_offset: usize,
    stats: Arc<AccessStats>,
    /// `(file length, mtime nanoseconds)` captured at open/revalidation
    /// time — the staleness token the cache compares replicas against.
    fingerprint: (u64, u64),
    /// Where the bytes came from, kept so [`ArrayFile::revalidate`] can
    /// re-stat and reopen. `None` for in-memory constructions.
    origin: Option<(std::path::PathBuf, MapMode)>,
}

impl ArrayFile {
    pub fn open(name: impl Into<String>, path: &Path) -> Result<Self> {
        Self::open_with(name, path, MapMode::Auto)
    }

    /// [`ArrayFile::open`] with an explicit backing policy
    /// ([`MapMode::Never`] is the `--no-mmap` escape hatch).
    pub fn open_with(name: impl Into<String>, path: &Path, mode: MapMode) -> Result<Self> {
        let data = RawData::open_with(path, mode)?;
        let fingerprint = vida_io::file_fingerprint(path)?;
        let mut f = Self::from_raw(name.into(), data)?;
        f.fingerprint = fingerprint;
        f.origin = Some((path.to_path_buf(), mode));
        Ok(f)
    }

    /// Re-stat the backing file and rebuild on any change. Arrays fix their
    /// dims in the header, so there is no append-extension fast path: a
    /// grown file means a rewritten header and a fresh index is as cheap as
    /// an extension would be (the header parse is O(rank)). In-memory files
    /// are always `Unchanged`.
    pub fn revalidate(&self) -> Result<FileRefresh<ArrayFile>> {
        let Some((path, mode)) = &self.origin else {
            return Ok(FileRefresh::Unchanged);
        };
        let current = vida_io::file_fingerprint(path)?;
        if current == self.fingerprint {
            return Ok(FileRefresh::Unchanged);
        }
        let data = RawData::open_with(path, *mode)?;
        let mut file = Self::from_raw(self.name.clone(), data)?;
        file.fingerprint = current;
        file.origin = self.origin.clone();
        file.stats = Arc::clone(&self.stats);
        Ok(FileRefresh::Rebuilt { file })
    }

    pub fn from_bytes(name: impl Into<String>, data: Vec<u8>) -> Result<Self> {
        Self::from_raw(name.into(), RawData::from_vec(data))
    }

    fn from_raw(name: String, data: RawData) -> Result<Self> {
        if data.len() < 16 || &data[0..8] != MAGIC {
            return Err(VidaError::format(&name, "bad magic (not a VIDARR01 file)"));
        }
        let tag = u32::from_le_bytes(data[8..12].try_into().unwrap());
        let elem = ElemType::from_tag(tag)
            .ok_or_else(|| VidaError::format(&name, format!("unknown element type {tag}")))?;
        let ndims = u32::from_le_bytes(data[12..16].try_into().unwrap()) as usize;
        if ndims == 0 || data.len() < 16 + ndims * 8 {
            return Err(VidaError::format(&name, "truncated header"));
        }
        let mut dims = Vec::with_capacity(ndims);
        for i in 0..ndims {
            let off = 16 + i * 8;
            dims.push(u64::from_le_bytes(data[off..off + 8].try_into().unwrap()) as usize);
        }
        let data_offset = 16 + ndims * 8;
        let expected: usize = dims.iter().product::<usize>() * 8;
        if data.len() < data_offset + expected {
            return Err(VidaError::format(
                &name,
                format!(
                    "truncated data: need {expected} bytes, have {}",
                    data.len() - data_offset
                ),
            ));
        }
        let fingerprint = (data.len() as u64, 0);
        Ok(ArrayFile {
            name,
            data,
            elem,
            dims,
            data_offset,
            stats: Arc::new(AccessStats::new()),
            fingerprint,
            origin: None,
        })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    pub fn elem_type(&self) -> ElemType {
        self.elem
    }

    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn stats(&self) -> Arc<AccessStats> {
        Arc::clone(&self.stats)
    }

    pub fn fingerprint(&self) -> (u64, u64) {
        self.fingerprint
    }

    pub fn raw_bytes(&self) -> usize {
        self.data.len()
    }

    /// Whether the raw bytes are backed by a shared file mapping (vs an
    /// owned copy).
    pub fn is_mapped(&self) -> bool {
        self.data.is_mapped()
    }

    /// The dataset schema when the array is viewed as a relation: one `int`
    /// index column per dimension plus a `val` column.
    pub fn relational_schema(&self) -> Schema {
        let mut pairs: Vec<(String, Type)> = (0..self.dims.len())
            .map(|d| (format!("i{d}"), Type::Int))
            .collect();
        pairs.push(("val".to_string(), self.elem.to_type()));
        Schema::from_pairs(pairs)
    }

    fn decode_at(&self, flat: usize) -> Value {
        let off = self.data_offset + flat * 8;
        let bytes: [u8; 8] = self.data[off..off + 8].try_into().unwrap();
        match self.elem {
            ElemType::I64 => Value::Int(i64::from_le_bytes(bytes)),
            ElemType::F64 => Value::Float(f64::from_le_bytes(bytes)),
        }
    }

    /// Read one element by multi-dimensional index. Constant cost — this is
    /// what the optimizer's binary-format wrapper models (§5).
    pub fn read_element(&self, idx: &[usize]) -> Result<Value> {
        if idx.len() != self.dims.len() {
            return Err(VidaError::format(
                &self.name,
                format!("index rank {} != array rank {}", idx.len(), self.dims.len()),
            ));
        }
        let mut flat = 0usize;
        for (i, (&x, &d)) in idx.iter().zip(self.dims.iter()).enumerate() {
            if x >= d {
                return Err(VidaError::format(
                    &self.name,
                    format!("index {x} out of range for dim {i} (size {d})"),
                ));
            }
            flat = flat * d + x;
        }
        self.stats.add_bytes_parsed(8);
        self.stats.add_fields_parsed(1);
        Ok(self.decode_at(flat))
    }

    /// Read a full row (first-dimension slice) of a 2-D array.
    pub fn read_row(&self, row: usize) -> Result<Vec<Value>> {
        if self.dims.len() != 2 {
            return Err(VidaError::format(&self.name, "read_row requires rank 2"));
        }
        let (rows, cols) = (self.dims[0], self.dims[1]);
        if row >= rows {
            return Err(VidaError::format(
                &self.name,
                format!("row {row} out of range"),
            ));
        }
        self.stats.add_bytes_parsed(cols as u64 * 8);
        self.stats.add_units(1);
        Ok((0..cols).map(|c| self.decode_at(row * cols + c)).collect())
    }

    /// Read an `n × m` chunk of a 2-D array (array-database retrieval unit).
    pub fn read_chunk(
        &self,
        row0: usize,
        col0: usize,
        n: usize,
        m: usize,
    ) -> Result<Vec<Vec<Value>>> {
        if self.dims.len() != 2 {
            return Err(VidaError::format(&self.name, "read_chunk requires rank 2"));
        }
        let (rows, cols) = (self.dims[0], self.dims[1]);
        if row0 + n > rows || col0 + m > cols {
            return Err(VidaError::format(
                &self.name,
                format!("chunk [{row0}+{n}, {col0}+{m}] exceeds dims {rows}x{cols}"),
            ));
        }
        self.stats.add_bytes_parsed((n * m * 8) as u64);
        self.stats.add_units(1);
        Ok((row0..row0 + n)
            .map(|r| {
                (col0..col0 + m)
                    .map(|c| self.decode_at(r * cols + c))
                    .collect()
            })
            .collect())
    }

    /// Iterate the whole array as relational records `(i0.., val)`.
    pub fn scan_relational(
        &self,
        mut f: impl FnMut(usize, Vec<Value>) -> Result<()>,
    ) -> Result<()> {
        let total = self.len();
        let mut idx = vec![0usize; self.dims.len()];
        for flat in 0..total {
            let mut rec: Vec<Value> = idx.iter().map(|&i| Value::Int(i as i64)).collect();
            rec.push(self.decode_at(flat));
            self.stats.add_units(1);
            self.stats.add_bytes_parsed(8);
            f(flat, rec)?;
            // Increment the multi-index, last dimension fastest.
            for d in (0..idx.len()).rev() {
                idx[d] += 1;
                if idx[d] < self.dims[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        Ok(())
    }

    /// Materialize the full array as a ViDa [`Value::Array`].
    pub fn to_value(&self) -> Value {
        let data = (0..self.len()).map(|i| self.decode_at(i)).collect();
        Value::Array {
            dims: self.dims.clone(),
            data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> ArrayFile {
        // 3x4 f64 matrix: value = 10*row + col.
        let data: Vec<Value> = (0..3)
            .flat_map(|r| (0..4).map(move |c| Value::Float((10 * r + c) as f64)))
            .collect();
        let bytes = encode_array(ElemType::F64, &[3, 4], &data).unwrap();
        ArrayFile::from_bytes("M", bytes).unwrap()
    }

    #[test]
    fn round_trip_elements() {
        let m = matrix();
        assert_eq!(m.dims(), &[3, 4]);
        assert_eq!(m.read_element(&[0, 0]).unwrap(), Value::Float(0.0));
        assert_eq!(m.read_element(&[2, 3]).unwrap(), Value::Float(23.0));
        assert_eq!(m.read_element(&[1, 2]).unwrap(), Value::Float(12.0));
    }

    #[test]
    fn rows_and_chunks() {
        let m = matrix();
        let row = m.read_row(1).unwrap();
        assert_eq!(
            row,
            vec![
                Value::Float(10.0),
                Value::Float(11.0),
                Value::Float(12.0),
                Value::Float(13.0)
            ]
        );
        let chunk = m.read_chunk(1, 1, 2, 2).unwrap();
        assert_eq!(chunk[0], vec![Value::Float(11.0), Value::Float(12.0)]);
        assert_eq!(chunk[1], vec![Value::Float(21.0), Value::Float(22.0)]);
    }

    #[test]
    fn bounds_errors() {
        let m = matrix();
        assert!(m.read_element(&[3, 0]).is_err());
        assert!(m.read_element(&[0]).is_err());
        assert!(m.read_row(5).is_err());
        assert!(m.read_chunk(2, 2, 2, 3).is_err());
    }

    #[test]
    fn i64_arrays() {
        let data: Vec<Value> = (0..6).map(Value::Int).collect();
        let bytes = encode_array(ElemType::I64, &[6], &data).unwrap();
        let a = ArrayFile::from_bytes("V", bytes).unwrap();
        assert_eq!(a.read_element(&[4]).unwrap(), Value::Int(4));
        assert_eq!(a.elem_type(), ElemType::I64);
    }

    #[test]
    fn relational_scan_emits_indexes() {
        let m = matrix();
        let mut recs = Vec::new();
        m.scan_relational(|_, r| {
            recs.push(r);
            Ok(())
        })
        .unwrap();
        assert_eq!(recs.len(), 12);
        assert_eq!(
            recs[5],
            vec![Value::Int(1), Value::Int(1), Value::Float(11.0)]
        );
        let s = m.relational_schema();
        assert_eq!(s.index_of("i0"), Some(0));
        assert_eq!(s.index_of("val"), Some(2));
    }

    #[test]
    fn bad_files_rejected() {
        assert!(ArrayFile::from_bytes("B", b"nope".to_vec()).is_err());
        let mut ok =
            encode_array(ElemType::F64, &[2], &[Value::Float(1.0), Value::Float(2.0)]).unwrap();
        ok.truncate(ok.len() - 4); // truncated data
        assert!(ArrayFile::from_bytes("B", ok).is_err());
    }

    #[test]
    fn encode_validates_shape() {
        assert!(encode_array(ElemType::F64, &[3], &[Value::Float(1.0)]).is_err());
        assert!(encode_array(ElemType::I64, &[1], &[Value::str("x")]).is_err());
    }

    #[test]
    fn to_value_matches() {
        let m = matrix();
        let v = m.to_value();
        let Value::Array { dims, data } = v else {
            panic!()
        };
        assert_eq!(dims, vec![3, 4]);
        assert_eq!(data.len(), 12);
        assert_eq!(data[7], Value::Float(13.0));
    }

    #[test]
    fn constant_cost_counters() {
        let m = matrix();
        m.read_element(&[0, 0]).unwrap();
        m.read_element(&[2, 2]).unwrap();
        let s = m.stats().snapshot();
        assert_eq!(s.bytes_parsed, 16); // 8 bytes per element, position-independent
    }
}
