//! The source description grammar (ViDa §3.1).
//!
//! ViDa's catalog equivalent: a concise description of each raw dataset —
//! enough for the engine to *generate* an access path at runtime. A
//! description carries (i) the schema, (ii) the retrieval **unit** the format
//! naturally exposes (element / row / column / chunk / object), and (iii) the
//! access paths available.
//!
//! The paper shows descriptions in a textual grammar, e.g.
//!
//! ```text
//! Array(Dim(i, int), Dim(j, int), Att(val))
//! val = Record(Att(elevation, float), Att(temperature, float))
//! ```
//!
//! [`parse_description_type`] implements that grammar (with `Record`,
//! `Array`, `Dim`, `Att`, `Set`, `Bag`, `List` productions) so descriptions
//! can be written as text in catalogs and tests.

use std::path::PathBuf;
use vida_types::{AccessPath, CollectionKind, Result, Schema, Type, VidaError};

/// Physical format of a raw dataset.
#[derive(Debug, Clone, PartialEq)]
pub enum DataFormat {
    /// Delimiter-separated text. `header` says whether row 0 names columns.
    Csv { delimiter: u8, header: bool },
    /// Newline-delimited JSON objects (one object per line), the shape of
    /// the paper's BrainRegions dataset.
    Json,
    /// ViDa's binary dense-array container (ROOT/FITS/NetCDF stand-in).
    BinaryArray,
    /// Data already inside the engine (caches, literals, test fixtures).
    InMemory,
}

impl DataFormat {
    pub fn name(&self) -> &'static str {
        match self {
            DataFormat::Csv { .. } => "csv",
            DataFormat::Json => "json",
            DataFormat::BinaryArray => "binarray",
            DataFormat::InMemory => "memory",
        }
    }

    /// Is per-attribute access cost constant (binary) or variable (text)?
    /// Drives the optimizer's cost wrapper choice (ViDa §5).
    pub fn constant_field_cost(&self) -> bool {
        matches!(self, DataFormat::BinaryArray | DataFormat::InMemory)
    }
}

/// The "unit" of data retrieved per access (ViDa §3.1): what one call to the
/// plugin's iterator yields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetrievalUnit {
    /// A single element (straightforward parsers).
    Element,
    /// One row / tuple / JSON object.
    Row,
    /// One column of a matrix or table.
    Column,
    /// An `n × m` chunk of an array (array databases).
    Chunk { rows: usize, cols: usize },
}

/// A complete catalog entry for one raw dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceDescription {
    /// Name queries refer to (`for { p <- Patients, ... }`).
    pub name: String,
    /// Location of the raw file (empty for in-memory sources).
    pub path: PathBuf,
    pub format: DataFormat,
    pub schema: Schema,
    pub unit: RetrievalUnit,
    pub access_paths: Vec<AccessPath>,
}

impl SourceDescription {
    /// Describe a CSV file with a header row and `,` delimiter.
    pub fn csv(name: impl Into<String>, path: impl Into<PathBuf>, schema: Schema) -> Self {
        SourceDescription {
            name: name.into(),
            path: path.into(),
            format: DataFormat::Csv {
                delimiter: b',',
                header: true,
            },
            schema,
            unit: RetrievalUnit::Row,
            access_paths: vec![AccessPath::SequentialScan, AccessPath::ByRowId],
        }
    }

    /// Describe a newline-delimited JSON file.
    pub fn json(name: impl Into<String>, path: impl Into<PathBuf>, schema: Schema) -> Self {
        SourceDescription {
            name: name.into(),
            path: path.into(),
            format: DataFormat::Json,
            schema,
            unit: RetrievalUnit::Row,
            access_paths: vec![AccessPath::SequentialScan, AccessPath::ByRowId],
        }
    }

    /// Describe a binary array file.
    pub fn binarray(name: impl Into<String>, path: impl Into<PathBuf>, schema: Schema) -> Self {
        SourceDescription {
            name: name.into(),
            path: path.into(),
            format: DataFormat::BinaryArray,
            schema,
            unit: RetrievalUnit::Chunk { rows: 64, cols: 64 },
            access_paths: vec![
                AccessPath::SequentialScan,
                AccessPath::ByRowId,
                AccessPath::IndexScan,
            ],
        }
    }

    /// Does this source support the given access path?
    pub fn supports(&self, ap: AccessPath) -> bool {
        self.access_paths.contains(&ap)
    }
}

/// Parse a type written in the paper's description grammar:
///
/// ```text
/// type    := "Record" "(" att ("," att)* ")"
///          | "Array"  "(" dim ("," dim)* "," att ")"
///          | ("Set"|"Bag"|"List") "(" type ")"
///          | scalar
/// att     := "Att" "(" ident ["," type] ")"
/// dim     := "Dim" "(" ident "," scalar ")"
/// scalar  := "int" | "float" | "bool" | "string"
/// ```
///
/// `Att(name)` without a type defaults to `float` (as in the paper's
/// example, where `val` is described separately).
pub fn parse_description_type(src: &str) -> Result<Type> {
    let mut p = DescParser {
        src: src.as_bytes(),
        pos: 0,
    };
    let t = p.parse_type()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(VidaError::parse(
            format!("trailing input in description at byte {}", p.pos),
            1,
            p.pos as u32 + 1,
        ));
    }
    Ok(t)
}

struct DescParser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> DescParser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn ident(&mut self) -> Result<String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(VidaError::parse(
                "expected identifier in source description",
                1,
                self.pos as u32 + 1,
            ));
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn expect(&mut self, ch: u8) -> Result<()> {
        self.skip_ws();
        if self.pos < self.src.len() && self.src[self.pos] == ch {
            self.pos += 1;
            Ok(())
        } else {
            Err(VidaError::parse(
                format!("expected '{}'", ch as char),
                1,
                self.pos as u32 + 1,
            ))
        }
    }

    fn peek(&mut self, ch: u8) -> bool {
        self.skip_ws();
        self.pos < self.src.len() && self.src[self.pos] == ch
    }

    fn parse_type(&mut self) -> Result<Type> {
        let head = self.ident()?;
        match head.as_str() {
            "int" => Ok(Type::Int),
            "float" => Ok(Type::Float),
            "bool" => Ok(Type::Bool),
            "string" => Ok(Type::Str),
            "Record" => {
                self.expect(b'(')?;
                let mut fields = Vec::new();
                loop {
                    let (name, ty) = self.parse_att()?;
                    fields.push((name, ty));
                    if self.peek(b',') {
                        self.expect(b',')?;
                    } else {
                        break;
                    }
                }
                self.expect(b')')?;
                Ok(Type::Record(fields))
            }
            "Array" => {
                self.expect(b'(')?;
                let mut dims = 0usize;
                let mut elem = Type::Float;
                loop {
                    self.skip_ws();
                    let save = self.pos;
                    let kw = self.ident()?;
                    match kw.as_str() {
                        "Dim" => {
                            self.expect(b'(')?;
                            let _name = self.ident()?;
                            self.expect(b',')?;
                            let _ty = self.ident()?; // dimension index type
                            self.expect(b')')?;
                            dims += 1;
                        }
                        "Att" => {
                            self.pos = save;
                            let (_name, ty) = self.parse_att()?;
                            elem = ty;
                        }
                        other => {
                            return Err(VidaError::parse(
                                format!("expected Dim or Att in Array, got '{other}'"),
                                1,
                                save as u32 + 1,
                            ))
                        }
                    }
                    if self.peek(b',') {
                        self.expect(b',')?;
                    } else {
                        break;
                    }
                }
                self.expect(b')')?;
                if dims == 0 {
                    return Err(VidaError::parse("Array needs at least one Dim", 1, 1));
                }
                Ok(Type::Array {
                    dims,
                    elem: Box::new(elem),
                })
            }
            "Set" | "Bag" | "List" => {
                self.expect(b'(')?;
                let inner = self.parse_type()?;
                self.expect(b')')?;
                let kind = match head.as_str() {
                    "Set" => CollectionKind::Set,
                    "Bag" => CollectionKind::Bag,
                    _ => CollectionKind::List,
                };
                Ok(Type::Collection(kind, Box::new(inner)))
            }
            other => Err(VidaError::parse(
                format!("unknown description head '{other}'"),
                1,
                1,
            )),
        }
    }

    fn parse_att(&mut self) -> Result<(String, Type)> {
        self.skip_ws();
        let kw = self.ident()?;
        if kw != "Att" {
            return Err(VidaError::parse(
                format!("expected Att, got '{kw}'"),
                1,
                self.pos as u32 + 1,
            ));
        }
        self.expect(b'(')?;
        let name = self.ident()?;
        let ty = if self.peek(b',') {
            self.expect(b',')?;
            self.parse_type()?
        } else {
            Type::Float
        };
        self.expect(b')')?;
        Ok((name, ty))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_array_example() {
        // The §3.1 example: a matrix of (elevation, temperature) records.
        let t = parse_description_type(
            "Array(Dim(i, int), Dim(j, int), \
             Att(val, Record(Att(elevation, float), Att(temperature, float))))",
        )
        .unwrap();
        assert_eq!(
            t,
            Type::Array {
                dims: 2,
                elem: Box::new(Type::record([
                    ("elevation", Type::Float),
                    ("temperature", Type::Float),
                ])),
            }
        );
    }

    #[test]
    fn parses_record_of_scalars() {
        let t = parse_description_type("Record(Att(id, int), Att(age, int), Att(city, string))")
            .unwrap();
        assert_eq!(
            t,
            Type::record([("id", Type::Int), ("age", Type::Int), ("city", Type::Str)])
        );
    }

    #[test]
    fn parses_nested_collections() {
        let t = parse_description_type("Bag(Record(Att(xs, List(float)), Att(n, int)))").unwrap();
        let Type::Collection(CollectionKind::Bag, inner) = t else {
            panic!("expected bag");
        };
        assert_eq!(
            inner.field("xs"),
            Some(&Type::Collection(
                CollectionKind::List,
                Box::new(Type::Float)
            ))
        );
    }

    #[test]
    fn att_defaults_to_float() {
        let t = parse_description_type("Record(Att(v))").unwrap();
        assert_eq!(t, Type::record([("v", Type::Float)]));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_description_type("Frob(Att(x))").is_err());
        assert!(parse_description_type("Record(Att(x)) trailing").is_err());
        assert!(parse_description_type("Array(Att(x))").is_err()); // no Dim
        assert!(parse_description_type("").is_err());
    }

    #[test]
    fn csv_description_defaults() {
        let d = SourceDescription::csv(
            "Patients",
            "/tmp/patients.csv",
            Schema::from_pairs([("id", Type::Int)]),
        );
        assert_eq!(d.format.name(), "csv");
        assert!(!d.format.constant_field_cost());
        assert_eq!(d.unit, RetrievalUnit::Row);
        assert!(d.supports(AccessPath::SequentialScan));
        assert!(d.supports(AccessPath::ByRowId));
        assert!(!d.supports(AccessPath::IndexScan));
    }

    #[test]
    fn binarray_has_constant_cost_and_chunks() {
        let d = SourceDescription::binarray(
            "Img",
            "/tmp/img.arr",
            Schema::from_pairs([("v", Type::Float)]),
        );
        assert!(d.format.constant_field_cost());
        assert!(matches!(d.unit, RetrievalUnit::Chunk { .. }));
        assert!(d.supports(AccessPath::IndexScan));
    }
}
