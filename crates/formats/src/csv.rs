//! CSV input plugin with NoDB-style positional maps (ViDa §2.1, §5; NoDB \[3\]).
//!
//! Text formats make per-attribute access cost *variable*: reading attribute
//! `k` of a row means tokenizing `k` delimiters from the row start. For wide
//! files (the paper's Genetics table has 17 832 attributes) that dominates
//! query time. The **positional map** remembers the byte offset of each
//! previously-located attribute, so later reads of the same attribute seek
//! directly, and reads of nearby attributes tokenize only the short distance
//! from the nearest known position.
//!
//! The map is populated as a side effect of query execution — exactly the
//! adaptive, query-driven behaviour the paper advocates — never as an
//! up-front pass.

use crate::stats::AccessStats;
use std::ops::Range;
use std::path::Path;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};
use vida_io::{bom_len, CsvTokenizer, MapMode, RawData};
use vida_types::{Result, Schema, Type, Value, VidaError};

/// Sentinel for "offset unknown" inside positional map columns.
const UNKNOWN: u32 = u32::MAX;

/// Lock-free positional map: one lazily-allocated offset array per column.
///
/// The original design kept a `RwLock<BTreeMap<col, Vec<u32>>>`, which put a
/// lock acquisition and a tree walk on **every** field read — enough that a
/// populated map lost to re-tokenizing on small files, and scan workers
/// would have serialized on the lock. Offsets are now plain atomics sharded
/// per column: reads are two relaxed loads, writes are one relaxed store,
/// and concurrent workers race only benignly (a field's offset is a pure
/// function of the bytes, so double-stores write the same value).
struct PosMap {
    cols: Vec<OnceLock<Box<[AtomicU32]>>>,
}

impl PosMap {
    fn new(num_cols: usize) -> Self {
        PosMap {
            cols: (0..num_cols).map(|_| OnceLock::new()).collect(),
        }
    }

    /// Known offset of `(row, col)`, if any.
    #[inline]
    fn get(&self, row: usize, col: usize) -> Option<u32> {
        let arr = self.cols.get(col)?.get()?;
        let off = arr[row].load(Ordering::Relaxed);
        (off != UNKNOWN).then_some(off)
    }

    /// Record the offset of `(row, col)`, allocating the column on first
    /// touch.
    fn set(&self, row: usize, col: usize, off: u32, num_rows: usize) {
        if let Some(slot) = self.cols.get(col) {
            let arr = slot.get_or_init(|| (0..num_rows).map(|_| AtomicU32::new(UNKNOWN)).collect());
            arr[row].store(off, Ordering::Relaxed);
        }
    }

    /// Number of columns with at least one recorded offset.
    fn tracked_columns(&self) -> usize {
        self.cols.iter().filter(|c| c.get().is_some()).count()
    }

    /// Carry the known offsets of the first `prefix_rows` rows into a fresh
    /// map sized for `new_rows` rows — the incremental-extension path:
    /// offsets are absolute byte positions into the file, and the first
    /// `prefix_rows` rows occupy unchanged bytes, so the learned positions
    /// stay exact. Appended rows start unknown.
    fn extended(&self, prefix_rows: usize, new_rows: usize) -> PosMap {
        let map = PosMap::new(self.cols.len());
        for (c, slot) in self.cols.iter().enumerate() {
            if let Some(arr) = slot.get() {
                let fresh: Box<[AtomicU32]> =
                    (0..new_rows).map(|_| AtomicU32::new(UNKNOWN)).collect();
                for r in 0..prefix_rows.min(arr.len()).min(new_rows) {
                    fresh[r].store(arr[r].load(Ordering::Relaxed), Ordering::Relaxed);
                }
                let _ = map.cols[c].set(fresh);
            }
        }
        map
    }
}

/// Outcome of re-statting a disk-backed input at query description time.
///
/// `T` is the refreshed reader (`CsvFile`, `JsonFile`, `ArrayFile`). The
/// original reader is never mutated — in-flight queries keep their `Arc`s —
/// the caller swaps the replacement into its catalog.
#[derive(Debug)]
pub enum FileRefresh<T> {
    /// Fingerprint unchanged (or the reader is not file-backed): keep
    /// serving the existing reader and its caches.
    Unchanged,
    /// The file grew and the old bytes are a byte-prefix of the new
    /// mapping: `file` was built incrementally (positional structures
    /// extended over the appended tail only), and cached structures
    /// covering the first `prefix_units` retrieval units of the *old*
    /// fingerprint remain valid.
    Extended { file: T, prefix_units: usize },
    /// The file shrank or was edited in place: `file` is a full rebuild
    /// and everything cached under the old fingerprint is stale.
    Rebuilt { file: T },
}

/// A CSV file opened for in-situ querying.
pub struct CsvFile {
    name: String,
    /// Raw bytes, memory-mapped when opened from disk (scan workers then
    /// share one set of pages) with an owned-buffer fallback.
    data: RawData,
    /// The shared quote-aware tokenizer: record/field structure has exactly
    /// one implementation (`vida_io::CsvTokenizer`), used by the row index
    /// build, field location, and schema inference alike.
    tok: CsvTokenizer,
    schema: Schema,
    /// Byte offset of the start of each data row (header excluded), plus a
    /// final entry at end-of-data, so row `i` spans `rows[i]..rows[i+1]-1`.
    rows: Vec<u32>,
    /// Per-column, per-row byte offsets of each column's first byte.
    posmap: PosMap,
    posmap_enabled: bool,
    header: bool,
    stats: Arc<AccessStats>,
    /// (file length, mtime nanoseconds) — cache invalidation fingerprint.
    fingerprint: (u64, u64),
    /// Where the bytes came from, when disk-backed: what
    /// [`CsvFile::revalidate`] re-stats and reopens.
    origin: Option<(std::path::PathBuf, MapMode)>,
}

impl CsvFile {
    /// Open a CSV file from disk, memory-mapping it when possible.
    pub fn open(
        name: impl Into<String>,
        path: &Path,
        delimiter: u8,
        header: bool,
        schema: Schema,
    ) -> Result<Self> {
        Self::open_with(name, path, delimiter, header, schema, MapMode::Auto)
    }

    /// [`CsvFile::open`] with an explicit backing policy ([`MapMode::Never`]
    /// is the `--no-mmap` escape hatch).
    pub fn open_with(
        name: impl Into<String>,
        path: &Path,
        delimiter: u8,
        header: bool,
        schema: Schema,
        mode: MapMode,
    ) -> Result<Self> {
        let data = RawData::open_with(path, mode)?;
        let fingerprint = vida_io::file_fingerprint(path)?;
        let mut f = Self::from_raw(name.into(), data, delimiter, header, schema)?;
        f.fingerprint = fingerprint;
        f.origin = Some((path.to_path_buf(), mode));
        Ok(f)
    }

    /// Open from an in-memory byte buffer (tests, generated workloads).
    pub fn from_bytes(
        name: impl Into<String>,
        data: Vec<u8>,
        delimiter: u8,
        header: bool,
        schema: Schema,
    ) -> Result<Self> {
        Self::from_raw(
            name.into(),
            RawData::from_vec(data),
            delimiter,
            header,
            schema,
        )
    }

    fn from_raw(
        name: String,
        data: RawData,
        delimiter: u8,
        header: bool,
        schema: Schema,
    ) -> Result<Self> {
        let tok = CsvTokenizer::new(delimiter);
        let mut rows = Vec::new();
        // A UTF-8 BOM is writer metadata, not data: start scanning past it
        // so it never glues onto the first header name or first field.
        let mut pos = bom_len(&data);
        // Skip the header line if present. Record scanning is quote-aware
        // (RFC 4180): a newline inside a quoted field is field content, not
        // a record boundary — so rows with embedded newlines stay one
        // retrieval unit and `unit_byte_span` morsel boundaries never split
        // a record.
        if header {
            pos = tok.record_end(&data, pos);
        }
        // One bulk scan builds the whole index: each record end (except
        // end-of-data) is the next record's start.
        if pos < data.len() {
            rows.push(pos as u32);
            tok.scan_record_ends(&data, pos, &mut |end| {
                if end < data.len() {
                    rows.push(end as u32);
                }
            });
        }
        rows.push(data.len() as u32);
        let fingerprint = (data.len() as u64, 0);
        let posmap = PosMap::new(schema.len());
        Ok(CsvFile {
            name,
            data,
            tok,
            schema,
            rows,
            posmap,
            posmap_enabled: true,
            header,
            stats: Arc::new(AccessStats::new()),
            fingerprint,
            origin: None,
        })
    }

    /// Re-stat the backing file (when disk-backed) and build a refreshed
    /// reader if it changed — the query-description-time revalidation hook.
    ///
    /// Growth with the old bytes still a prefix of the new mapping (checked
    /// cheaply via [`vida_io::prefix_matches`]) re-tokenizes **only** from
    /// the start of the last old row: the row index and the learned
    /// positional-map offsets for every earlier row are carried over
    /// verbatim. Anything else — shrink, in-place edit, prefix mismatch —
    /// reopens and re-indexes from scratch; the old mapping is never
    /// dereferenced past the newly-statted length, so a truncated file
    /// cannot SIGBUS the revalidation itself.
    pub fn revalidate(&self) -> Result<FileRefresh<CsvFile>> {
        let Some((path, mode)) = &self.origin else {
            return Ok(FileRefresh::Unchanged);
        };
        let current = vida_io::file_fingerprint(path)?;
        if current == self.fingerprint {
            return Ok(FileRefresh::Unchanged);
        }
        let data = RawData::open_with(path, *mode)?;
        let grown = data.len() as u64 == current.0 && current.0 > self.fingerprint.0;
        if grown && vida_io::prefix_matches(&self.data, &data) {
            let (file, prefix_units) = self.extend_from(data, current);
            return Ok(FileRefresh::Extended { file, prefix_units });
        }
        let mut file = Self::from_raw(
            self.name.clone(),
            data,
            self.tok.delimiter(),
            self.header,
            self.schema.clone(),
        )?;
        file.fingerprint = current;
        file.origin = self.origin.clone();
        file.posmap_enabled = self.posmap_enabled;
        file.stats = Arc::clone(&self.stats);
        Ok(FileRefresh::Rebuilt { file })
    }

    /// Build the incrementally-extended reader over `data` (the grown
    /// mapping whose prefix equals the old bytes). Returns the reader and
    /// the number of leading retrieval units whose byte spans are unchanged.
    ///
    /// Only the last old row is re-tokenized: it may have lacked a trailing
    /// newline or carried an unterminated quote, in which case appended
    /// bytes extend *it* rather than starting a new row. Rows before it can
    /// never be affected by appended bytes (an unterminated quote always
    /// belongs to the final row by construction).
    fn extend_from(&self, data: RawData, fingerprint: (u64, u64)) -> (CsvFile, usize) {
        let n = self.num_rows();
        let old_len = self.data.len();
        let mut rows: Vec<u32>;
        let rescan_from = if n == 0 {
            // No old data rows (empty or header-only file): index from the
            // top, exactly like a cold build.
            rows = Vec::new();
            let mut pos = bom_len(&data);
            if self.header {
                pos = self.tok.record_end(&data, pos);
            }
            pos
        } else {
            rows = self.rows[..n - 1].to_vec();
            self.rows[n - 1] as usize
        };
        if rescan_from < data.len() {
            rows.push(rescan_from as u32);
            self.tok.scan_record_ends(&data, rescan_from, &mut |end| {
                if end < data.len() {
                    rows.push(end as u32);
                }
            });
        }
        rows.push(data.len() as u32);
        let num_rows = rows.len() - 1;
        // The last old row survives intact iff the re-tokenization still
        // ends it exactly at the old end-of-data (i.e. the appended bytes
        // started a fresh row rather than extending it).
        let prefix_units = if n > 0 && rows.get(n) == Some(&(old_len as u32)) {
            n
        } else {
            n.saturating_sub(1)
        };
        let posmap = if self.posmap_enabled {
            self.posmap.extended(prefix_units, num_rows)
        } else {
            PosMap::new(self.schema.len())
        };
        let file = CsvFile {
            name: self.name.clone(),
            data,
            tok: self.tok,
            schema: self.schema.clone(),
            rows,
            posmap,
            posmap_enabled: self.posmap_enabled,
            header: self.header,
            stats: Arc::clone(&self.stats),
            fingerprint,
            origin: self.origin.clone(),
        };
        (file, prefix_units)
    }

    /// Disable the positional map (ablation baseline: every field read
    /// tokenizes from the row start, like a naive external-table scanner).
    pub fn set_posmap_enabled(&mut self, enabled: bool) {
        self.posmap_enabled = enabled;
        if !enabled {
            self.posmap = PosMap::new(self.schema.len());
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn num_rows(&self) -> usize {
        self.rows.len() - 1
    }

    pub fn stats(&self) -> Arc<AccessStats> {
        Arc::clone(&self.stats)
    }

    pub fn fingerprint(&self) -> (u64, u64) {
        self.fingerprint
    }

    /// Approximate raw size in bytes (the whole file).
    pub fn raw_bytes(&self) -> usize {
        self.data.len()
    }

    /// Whether the raw bytes are backed by a shared file mapping (vs an
    /// owned copy).
    pub fn is_mapped(&self) -> bool {
        self.data.is_mapped()
    }

    /// Start offsets of every data row plus a final end-of-data entry —
    /// the record-aligned grid morsel dispatchers partition by raw bytes
    /// (row `i` spans `offsets[i]..offsets[i + 1]`).
    pub fn unit_offsets(&self) -> &[u32] {
        &self.rows
    }

    /// Number of distinct columns currently tracked by the positional map.
    pub fn posmap_columns(&self) -> usize {
        self.posmap.tracked_columns()
    }

    /// Byte span of data row `row` (newline-aligned: starts at the first
    /// byte of the row, ends just past its trailing newline).
    pub fn unit_byte_span(&self, row: usize) -> Option<(usize, usize)> {
        if row + 1 >= self.rows.len() {
            return None;
        }
        Some((self.rows[row] as usize, self.rows[row + 1] as usize))
    }

    fn row_span(&self, row: usize) -> Result<(usize, usize)> {
        if row + 1 >= self.rows.len() {
            return Err(VidaError::format(
                &self.name,
                format!("row {row} out of range ({} rows)", self.num_rows()),
            ));
        }
        let start = self.rows[row] as usize;
        let mut end = self.rows[row + 1] as usize;
        // Trim the trailing newline (and CR) of this row.
        while end > start && (self.data[end - 1] == b'\n' || self.data[end - 1] == b'\r') {
            end -= 1;
        }
        Ok((start, end))
    }

    /// Locate the byte span of `(row, col)`: `(field_start, field_end)`.
    ///
    /// Consults the positional map for the nearest known column at or before
    /// `col`, tokenizes forward the remaining distance, and records the
    /// found position back into the map.
    fn locate_field(&self, row: usize, col: usize) -> Result<(usize, usize)> {
        let (row_start, row_end) = self.row_span(row)?;

        // Find the nearest tracked column <= col with a known offset. The
        // exact-hit probe is the hot path: two relaxed atomic loads, no
        // lock, no tree walk.
        let (mut cur_col, mut cur_off) = (0usize, row_start);
        if self.posmap_enabled {
            if let Some(off) = self.posmap.get(row, col) {
                let off = off as usize;
                self.stats.hit();
                self.stats.add_bytes_skipped((off - row_start) as u64);
                let end = self.field_end(off, row_end);
                return Ok((off, end));
            }
            for c in (0..col).rev() {
                if let Some(off) = self.posmap.get(row, c) {
                    cur_col = c;
                    cur_off = off as usize;
                    break;
                }
            }
            if cur_off != row_start {
                self.stats.partial();
                self.stats.add_bytes_skipped((cur_off - row_start) as u64);
            } else {
                self.stats.miss();
            }
        } else {
            self.stats.miss();
        }

        // Tokenize forward from (cur_col, cur_off) to col — word-at-a-time
        // via the shared tokenizer.
        let off = match self
            .tok
            .skip_fields(&self.data, cur_off, row_end, col - cur_col)
        {
            Ok(off) => off,
            Err(found) => {
                return Err(VidaError::format(
                    &self.name,
                    format!(
                        "row {row} has only {} columns, wanted {}",
                        cur_col + found + 1,
                        col + 1
                    ),
                ))
            }
        };
        self.stats.add_bytes_parsed((off - cur_off) as u64);

        if self.posmap_enabled {
            self.posmap.set(row, col, off as u32, self.num_rows());
        }
        let end = self.field_end(off, row_end);
        Ok((off, end))
    }

    /// End of the field starting at `start` (respects RFC 4180 quoting:
    /// `""` inside a quoted field is an escaped literal quote, not the
    /// closing one).
    fn field_end(&self, start: usize, row_end: usize) -> usize {
        self.tok.field_end(&self.data, start, row_end)
    }

    /// Byte span of the raw text of `(row, col)` — the positions-only cache
    /// layout (Figure 4 (d)) carries these instead of parsed values.
    /// Locating the span feeds the positional map exactly like a read.
    pub fn field_byte_span(&self, row: usize, col: usize) -> Result<(usize, usize)> {
        if col >= self.schema.len() {
            return Err(VidaError::format(
                &self.name,
                format!("column {col} out of range ({} columns)", self.schema.len()),
            ));
        }
        self.locate_field(row, col)
    }

    /// Parse the raw bytes of `span` as a value of column `col`'s type —
    /// rehydration of a positions-only replica: an exact seek (no
    /// tokenizing), then one field parse.
    pub fn parse_field_span(&self, col: usize, span: (usize, usize)) -> Result<Value> {
        let (start, end) = span;
        if col >= self.schema.len() || start > end || end > self.data.len() {
            return Err(VidaError::format(
                &self.name,
                format!("bad span ({start}, {end}) for column {col}"),
            ));
        }
        self.stats.hit();
        self.stats.add_bytes_parsed((end - start) as u64);
        self.stats.add_fields_parsed(1);
        parse_field(
            &self.data[start..end],
            &self.schema.fields()[col].ty,
            &self.name,
        )
    }

    /// Read one field as a typed value.
    pub fn read_field(&self, row: usize, col: usize) -> Result<Value> {
        if col >= self.schema.len() {
            return Err(VidaError::format(
                &self.name,
                format!("column {col} out of range ({} columns)", self.schema.len()),
            ));
        }
        let (start, end) = self.locate_field(row, col)?;
        self.stats.add_bytes_parsed((end - start) as u64);
        self.stats.add_fields_parsed(1);
        let text = &self.data[start..end];
        parse_field(text, &self.schema.fields()[col].ty, &self.name)
    }

    /// Read several fields of one row (ascending column order recommended).
    pub fn read_fields(&self, row: usize, cols: &[usize]) -> Result<Vec<Value>> {
        cols.iter().map(|&c| self.read_field(row, c)).collect()
    }

    /// Full-row read in schema order.
    pub fn read_row(&self, row: usize) -> Result<Value> {
        let vals = self.read_fields(row, &(0..self.schema.len()).collect::<Vec<_>>())?;
        self.stats.add_units(1);
        Ok(self.schema.record_value(vals))
    }

    /// Sequentially scan projected columns of all rows, invoking `f` per row.
    ///
    /// This is the plugin code path the generated scan operators use; it
    /// tokenizes each row once, left-to-right, touching only the projected
    /// columns, and feeds the positional map as a side effect.
    pub fn scan_project(
        &self,
        cols: &[usize],
        f: impl FnMut(usize, Vec<Value>) -> Result<()>,
    ) -> Result<()> {
        self.scan_project_range(cols, 0..self.num_rows(), f)
    }

    /// [`CsvFile::scan_project`] restricted to a contiguous row range — the
    /// per-morsel scan of parallel execution. Ranges from
    /// `vida_parallel::plan_scan` are newline-aligned byte spans, so
    /// concurrent workers touch disjoint bytes and only share the (atomic)
    /// positional map.
    pub fn scan_project_range(
        &self,
        cols: &[usize],
        rows: Range<usize>,
        mut f: impl FnMut(usize, Vec<Value>) -> Result<()>,
    ) -> Result<()> {
        let mut sorted = cols.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let in_order = sorted == cols;
        for row in rows {
            let vals = self.read_fields(row, &sorted)?;
            // Deliver in caller order; when the projection is already
            // sorted and duplicate-free (the generated-pipeline case) the
            // values pass through without a per-field clone.
            let delivered = if in_order {
                vals
            } else {
                cols.iter()
                    .map(|c| {
                        let idx = sorted.binary_search(c).expect("col present");
                        vals[idx].clone()
                    })
                    .collect()
            };
            self.stats.add_units(1);
            f(row, delivered)?;
        }
        Ok(())
    }
}

/// Parse one raw CSV field into a typed [`Value`].
///
/// Empty text parses as `Null`. Quoted strings lose their quotes and
/// unescape doubled quotes (`""` → `"`). Numeric parse failures are format
/// errors (data cleaning, ViDa §7, hooks in here).
pub fn parse_field(text: &[u8], ty: &Type, source: &str) -> Result<Value> {
    let s = std::str::from_utf8(text)
        .map_err(|_| VidaError::format(source, "invalid UTF-8 in field"))?;
    let s = s.trim();
    if s.is_empty() {
        return Ok(Value::Null);
    }
    let unescaped;
    let unquoted = if s.len() >= 2 && s.starts_with('"') && s.ends_with('"') {
        let inner = &s[1..s.len() - 1];
        if inner.contains("\"\"") {
            unescaped = inner.replace("\"\"", "\"");
            unescaped.as_str()
        } else {
            inner
        }
    } else {
        s
    };
    match ty {
        Type::Int => unquoted
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| VidaError::format(source, format!("bad int: {unquoted:?}"))),
        Type::Float => unquoted
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| VidaError::format(source, format!("bad float: {unquoted:?}"))),
        Type::Bool => match unquoted {
            "true" | "1" | "t" => Ok(Value::Bool(true)),
            "false" | "0" | "f" => Ok(Value::Bool(false)),
            _ => Err(VidaError::format(source, format!("bad bool: {unquoted:?}"))),
        },
        Type::Str | Type::Unknown => Ok(Value::Str(unquoted.to_string())),
        other => Err(VidaError::format(
            source,
            format!("CSV cannot hold values of type {other}"),
        )),
    }
}

/// Infer a schema from the first `sample_rows` data rows.
///
/// Types are inferred per column as the narrowest of int → float → bool →
/// string that parses every sampled value; empty samples infer as nullable
/// strings. Column names come from the header row when `header` is true,
/// else `c0..cN`.
pub fn infer_schema(
    data: &[u8],
    delimiter: u8,
    header: bool,
    sample_rows: usize,
) -> Result<Schema> {
    // Record iteration and field splitting share the quote-aware tokenizer
    // with `CsvFile`, so inference sees the same records a scan would —
    // quoted newlines, doubled-quote escapes, and BOM stripping included.
    let tok = CsvTokenizer::new(delimiter);
    let mut records: Vec<&[u8]> = Vec::new();
    let mut pos = bom_len(data);
    while pos < data.len() {
        let end = tok.record_end(data, pos);
        let mut line = &data[pos..end];
        while matches!(line.last(), Some(&b'\n') | Some(&b'\r')) {
            line = &line[..line.len() - 1];
        }
        if !line.is_empty() {
            records.push(line);
        }
        pos = end;
    }
    let mut records = records.into_iter();
    let names: Vec<String> = if header {
        let h = records
            .next()
            .ok_or_else(|| VidaError::format("<infer>", "empty file"))?;
        tok.split_fields(h)
            .into_iter()
            .map(|f| unquote_name(String::from_utf8_lossy(f).trim()))
            .collect()
    } else {
        Vec::new()
    };

    let mut col_types: Vec<Option<InferredTy>> = Vec::new();
    for (i, line) in records.enumerate() {
        if i >= sample_rows {
            break;
        }
        for (c, field) in tok.split_fields(line).into_iter().enumerate() {
            if col_types.len() <= c {
                col_types.resize(c + 1, None);
            }
            let t = infer_one(field);
            col_types[c] = Some(match (col_types[c], t) {
                (None, t) => t,
                (Some(a), b) => a.widen(b),
            });
        }
    }
    if col_types.is_empty() {
        return Err(VidaError::format("<infer>", "no data rows to infer from"));
    }
    let fields = col_types
        .into_iter()
        .enumerate()
        .map(|(i, t)| {
            let name = names.get(i).cloned().unwrap_or_else(|| format!("c{i}"));
            (name, t.unwrap_or(InferredTy::Str).to_type())
        })
        .collect::<Vec<_>>();
    Ok(Schema::from_pairs(fields))
}

/// Strip surrounding quotes (and unescape `""`) from a header name.
fn unquote_name(name: &str) -> String {
    if name.len() >= 2 && name.starts_with('"') && name.ends_with('"') {
        name[1..name.len() - 1].replace("\"\"", "\"")
    } else {
        name.to_string()
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum InferredTy {
    Int,
    Float,
    Bool,
    Str,
}

impl InferredTy {
    fn widen(self, other: InferredTy) -> InferredTy {
        use InferredTy::*;
        match (self, other) {
            (a, b) if a == b => a,
            (Int, Float) | (Float, Int) => Float,
            _ => Str,
        }
    }

    fn to_type(self) -> Type {
        match self {
            InferredTy::Int => Type::Int,
            InferredTy::Float => Type::Float,
            InferredTy::Bool => Type::Bool,
            InferredTy::Str => Type::Str,
        }
    }
}

fn infer_one(field: &[u8]) -> InferredTy {
    let Ok(s) = std::str::from_utf8(field) else {
        return InferredTy::Str;
    };
    let s = s.trim();
    if s.is_empty() {
        return InferredTy::Str;
    }
    if s.parse::<i64>().is_ok() {
        InferredTy::Int
    } else if s.parse::<f64>().is_ok() {
        InferredTy::Float
    } else if matches!(s, "true" | "false") {
        InferredTy::Bool
    } else {
        InferredTy::Str
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsvFile {
        let data =
            b"id,age,protein,city\n1,64,0.5,geneva\n2,31,1.25,bern\n3,77,2.0,basel\n".to_vec();
        CsvFile::from_bytes(
            "Patients",
            data,
            b',',
            true,
            Schema::from_pairs([
                ("id", Type::Int),
                ("age", Type::Int),
                ("protein", Type::Float),
                ("city", Type::Str),
            ]),
        )
        .unwrap()
    }

    #[test]
    fn reads_typed_fields() {
        let f = sample();
        assert_eq!(f.num_rows(), 3);
        assert_eq!(f.read_field(0, 0).unwrap(), Value::Int(1));
        assert_eq!(f.read_field(1, 2).unwrap(), Value::Float(1.25));
        assert_eq!(f.read_field(2, 3).unwrap(), Value::str("basel"));
    }

    #[test]
    fn read_row_assembles_record() {
        let f = sample();
        let r = f.read_row(1).unwrap();
        assert_eq!(r.field("age"), Some(&Value::Int(31)));
        assert_eq!(r.field("city"), Some(&Value::str("bern")));
    }

    #[test]
    fn posmap_turns_repeat_reads_into_hits() {
        let f = sample();
        // First access to col 3: a miss that tokenizes the row.
        f.read_field(0, 3).unwrap();
        let s1 = f.stats().snapshot();
        assert_eq!(s1.posmap_misses, 1);
        assert_eq!(s1.posmap_hits, 0);
        // Second access to same (row, col): exact hit, no tokenizing.
        f.read_field(0, 3).unwrap();
        let s2 = f.stats().snapshot();
        assert_eq!(s2.posmap_hits, 1);
        assert!(s2.bytes_skipped > s1.bytes_skipped);
    }

    #[test]
    fn posmap_partial_from_nearby_column() {
        let f = sample();
        f.read_field(0, 1).unwrap(); // tracks col 1
        f.read_field(0, 3).unwrap(); // should start from col 1, partial
        let s = f.stats().snapshot();
        assert_eq!(s.posmap_partial, 1);
    }

    #[test]
    fn posmap_disabled_always_misses() {
        let mut f = sample();
        f.set_posmap_enabled(false);
        f.read_field(0, 3).unwrap();
        f.read_field(0, 3).unwrap();
        let s = f.stats().snapshot();
        assert_eq!(s.posmap_hits, 0);
        assert_eq!(s.posmap_misses, 2);
        assert_eq!(f.posmap_columns(), 0);
    }

    #[test]
    fn scan_project_delivers_in_caller_order() {
        let f = sample();
        let mut rows = Vec::new();
        f.scan_project(&[2, 0], |_, vals| {
            rows.push(vals);
            Ok(())
        })
        .unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], vec![Value::Float(0.5), Value::Int(1)]);
    }

    #[test]
    fn unit_spans_are_newline_aligned() {
        let f = sample();
        let (s0, e0) = f.unit_byte_span(0).unwrap();
        let (s1, _) = f.unit_byte_span(1).unwrap();
        assert_eq!(e0, s1);
        assert_eq!(f.data[e0 - 1], b'\n');
        assert_eq!(&f.data[s0..s0 + 2], b"1,");
        assert!(f.unit_byte_span(99).is_none());
    }

    #[test]
    fn scan_project_range_matches_full_scan() {
        let f = sample();
        let mut full = Vec::new();
        f.scan_project(&[1, 3], |r, v| {
            full.push((r, v));
            Ok(())
        })
        .unwrap();
        let mut ranged = Vec::new();
        for r in 0..f.num_rows() {
            f.scan_project_range(&[1, 3], r..r + 1, |row, v| {
                ranged.push((row, v));
                Ok(())
            })
            .unwrap();
        }
        assert_eq!(full, ranged);
    }

    #[test]
    fn posmap_is_shared_across_concurrent_scans() {
        // Workers scanning disjoint row ranges populate one positional map
        // without locks; afterwards every (row, col 3) read is an exact hit.
        let f = std::sync::Arc::new(sample());
        std::thread::scope(|s| {
            for r in (0..f.num_rows()).map(|r| r..r + 1) {
                let f = std::sync::Arc::clone(&f);
                s.spawn(move || {
                    f.scan_project_range(&[3], r, |_, _| Ok(())).unwrap();
                });
            }
        });
        let before = f.stats().snapshot();
        for row in 0..f.num_rows() {
            f.read_field(row, 3).unwrap();
        }
        let after = f.stats().snapshot();
        assert_eq!(
            after.posmap_hits - before.posmap_hits,
            f.num_rows() as u64,
            "every re-read should hit the concurrently-populated map"
        );
    }

    #[test]
    fn quoted_fields_and_embedded_delimiters() {
        let data = b"id,name\n1,\"doe, jane\"\n2,plain\n".to_vec();
        let f = CsvFile::from_bytes(
            "T",
            data,
            b',',
            true,
            Schema::from_pairs([("id", Type::Int), ("name", Type::Str)]),
        )
        .unwrap();
        assert_eq!(f.read_field(0, 1).unwrap(), Value::str("doe, jane"));
        assert_eq!(f.read_field(1, 1).unwrap(), Value::str("plain"));
    }

    #[test]
    fn doubled_quotes_unescape_and_do_not_truncate() {
        // RFC 4180: `""` inside a quoted field is a literal quote. The scan
        // must not stop at the first inner quote (which would also mislocate
        // the following delimiter), and the parse must unescape.
        let data =
            b"id,name,tag\n1,\"a\"\"b\",x\n2,\"say \"\"hi\"\", ok\",y\n3,\"\"\"\",z\n".to_vec();
        let f = CsvFile::from_bytes(
            "T",
            data,
            b',',
            true,
            Schema::from_pairs([("id", Type::Int), ("name", Type::Str), ("tag", Type::Str)]),
        )
        .unwrap();
        assert_eq!(f.read_field(0, 1).unwrap(), Value::str("a\"b"));
        assert_eq!(f.read_field(0, 2).unwrap(), Value::str("x"));
        assert_eq!(f.read_field(1, 1).unwrap(), Value::str("say \"hi\", ok"));
        assert_eq!(f.read_field(1, 2).unwrap(), Value::str("y"));
        assert_eq!(f.read_field(2, 1).unwrap(), Value::str("\""));
        assert_eq!(f.read_field(2, 2).unwrap(), Value::str("z"));
    }

    #[test]
    fn escaped_field_spans_round_trip_through_span_parse() {
        // Positions-layout spans of escaped fields must cover the full
        // quoted text (escapes included) and rehydrate to the unescaped
        // value.
        let data = b"id,name\n1,\"a\"\"b\"\n2,\"plain\"\n".to_vec();
        let f = CsvFile::from_bytes(
            "T",
            data,
            b',',
            true,
            Schema::from_pairs([("id", Type::Int), ("name", Type::Str)]),
        )
        .unwrap();
        let span = f.field_byte_span(0, 1).unwrap();
        assert_eq!(&f.data[span.0..span.1], b"\"a\"\"b\"");
        assert_eq!(f.parse_field_span(1, span).unwrap(), Value::str("a\"b"));
        let span = f.field_byte_span(1, 1).unwrap();
        assert_eq!(f.parse_field_span(1, span).unwrap(), Value::str("plain"));
    }

    #[test]
    fn quoted_newlines_stay_one_record() {
        // A quoted field with an embedded newline is ONE record: row
        // indexing (and therefore `unit_byte_span` morsel alignment) must
        // be quote-aware, or parallel scans split the record in half.
        let data = b"id,note\n1,\"line one\nline two\"\n2,flat\n".to_vec();
        let f = CsvFile::from_bytes(
            "T",
            data.clone(),
            b',',
            true,
            Schema::from_pairs([("id", Type::Int), ("note", Type::Str)]),
        )
        .unwrap();
        assert_eq!(f.num_rows(), 2);
        assert_eq!(
            f.read_field(0, 1).unwrap(),
            Value::str("line one\nline two")
        );
        assert_eq!(f.read_field(1, 0).unwrap(), Value::Int(2));
        // The unit span covers the whole logical record, embedded newline
        // included, and the next record starts exactly where it ends.
        let (s0, e0) = f.unit_byte_span(0).unwrap();
        assert_eq!(&data[s0..e0], b"1,\"line one\nline two\"\n");
        let (s1, _) = f.unit_byte_span(1).unwrap();
        assert_eq!(e0, s1);
        // Ranged scans over the quote-aware rows match the full scan.
        let mut full = Vec::new();
        f.scan_project(&[1], |r, v| {
            full.push((r, v));
            Ok(())
        })
        .unwrap();
        let mut ranged = Vec::new();
        for r in 0..f.num_rows() {
            f.scan_project_range(&[1], r..r + 1, |row, v| {
                ranged.push((row, v));
                Ok(())
            })
            .unwrap();
        }
        assert_eq!(full, ranged);
    }

    #[test]
    fn quoted_newline_in_header_is_skipped_whole() {
        let data = b"id,\"na\nme\"\n1,x\n".to_vec();
        let f = CsvFile::from_bytes(
            "T",
            data,
            b',',
            true,
            Schema::from_pairs([("id", Type::Int), ("name", Type::Str)]),
        )
        .unwrap();
        assert_eq!(f.num_rows(), 1);
        assert_eq!(f.read_field(0, 1).unwrap(), Value::str("x"));
    }

    #[test]
    fn unterminated_quote_runs_to_end_of_data() {
        let data = b"a,b\n1,\"open\n".to_vec();
        let f = CsvFile::from_bytes(
            "T",
            data,
            b',',
            true,
            Schema::from_pairs([("a", Type::Int), ("b", Type::Str)]),
        )
        .unwrap();
        assert_eq!(f.num_rows(), 1);
        assert_eq!(f.read_field(0, 0).unwrap(), Value::Int(1));
    }

    #[test]
    fn empty_field_is_null() {
        let data = b"a,b\n1,\n,2\n".to_vec();
        let f = CsvFile::from_bytes(
            "T",
            data,
            b',',
            true,
            Schema::from_pairs([("a", Type::Int), ("b", Type::Int)]),
        )
        .unwrap();
        assert_eq!(f.read_field(0, 1).unwrap(), Value::Null);
        assert_eq!(f.read_field(1, 0).unwrap(), Value::Null);
    }

    #[test]
    fn out_of_range_errors() {
        let f = sample();
        assert!(f.read_field(99, 0).is_err());
        assert!(f.read_field(0, 99).is_err());
    }

    #[test]
    fn short_row_errors() {
        let data = b"a,b,c\n1,2\n".to_vec();
        let f = CsvFile::from_bytes(
            "T",
            data,
            b',',
            true,
            Schema::from_pairs([("a", Type::Int), ("b", Type::Int), ("c", Type::Int)]),
        )
        .unwrap();
        let e = f.read_field(0, 2).unwrap_err();
        assert_eq!(e.kind(), "format");
    }

    #[test]
    fn crlf_handled() {
        let data = b"a,b\r\n1,2\r\n3,4\r\n".to_vec();
        let f = CsvFile::from_bytes(
            "T",
            data,
            b',',
            true,
            Schema::from_pairs([("a", Type::Int), ("b", Type::Int)]),
        )
        .unwrap();
        assert_eq!(f.read_field(0, 1).unwrap(), Value::Int(2));
        assert_eq!(f.read_field(1, 1).unwrap(), Value::Int(4));
    }

    #[test]
    fn bad_number_is_format_error() {
        let data = b"a\nxyz\n".to_vec();
        let f = CsvFile::from_bytes(
            "T",
            data,
            b',',
            true,
            Schema::from_pairs([("a", Type::Int)]),
        )
        .unwrap();
        assert_eq!(f.read_field(0, 0).unwrap_err().kind(), "format");
    }

    #[test]
    fn infer_schema_types_and_names() {
        let data = b"id,score,flag,label\n1,0.5,true,aa\n2,1.5,false,bb\n";
        let s = infer_schema(data, b',', true, 10).unwrap();
        assert_eq!(s.index_of("id"), Some(0));
        assert_eq!(s.field("id").unwrap().ty, Type::Int);
        assert_eq!(s.field("score").unwrap().ty, Type::Float);
        assert_eq!(s.field("flag").unwrap().ty, Type::Bool);
        assert_eq!(s.field("label").unwrap().ty, Type::Str);
    }

    #[test]
    fn infer_widens_int_to_float_to_str() {
        let data = b"x\n1\n2.5\n";
        let s = infer_schema(data, b',', true, 10).unwrap();
        assert_eq!(s.field("x").unwrap().ty, Type::Float);
        let data2 = b"x\n1\nhello\n";
        let s2 = infer_schema(data2, b',', true, 10).unwrap();
        assert_eq!(s2.field("x").unwrap().ty, Type::Str);
    }

    #[test]
    fn infer_schema_is_quote_aware() {
        // Quoted newlines and embedded delimiters must not desync the
        // sampled records from what a scan parses.
        let data = b"id,\"no,te\"\n1,\"line one\nline two\"\n2,\"a\"\"b\"\n";
        let s = infer_schema(data, b',', true, 10).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.index_of("id"), Some(0));
        assert_eq!(s.index_of("no,te"), Some(1));
        assert_eq!(s.field("id").unwrap().ty, Type::Int);
        assert_eq!(s.field("no,te").unwrap().ty, Type::Str);
    }

    #[test]
    fn infer_without_header_names_columns() {
        let data = b"1,a\n2,b\n";
        let s = infer_schema(data, b',', false, 10).unwrap();
        assert_eq!(s.index_of("c0"), Some(0));
        assert_eq!(s.index_of("c1"), Some(1));
    }

    #[test]
    fn utf8_bom_is_stripped() {
        // A BOM must not glue onto the first header name (inference) nor
        // shift the first data row (reads).
        let data = b"\xEF\xBB\xBFid,age\n1,64\n2,31\n".to_vec();
        let s = infer_schema(&data, b',', true, 10).unwrap();
        assert_eq!(s.index_of("id"), Some(0), "BOM glued onto header name");
        let f = CsvFile::from_bytes(
            "T",
            data,
            b',',
            true,
            Schema::from_pairs([("id", Type::Int), ("age", Type::Int)]),
        )
        .unwrap();
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.read_field(0, 0).unwrap(), Value::Int(1));
        // Headerless files start their first row right after the BOM.
        let f = CsvFile::from_bytes(
            "T",
            b"\xEF\xBB\xBF7,8\n".to_vec(),
            b',',
            false,
            Schema::from_pairs([("a", Type::Int), ("b", Type::Int)]),
        )
        .unwrap();
        assert_eq!(f.read_field(0, 0).unwrap(), Value::Int(7));
    }

    fn temp_csv(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("vida-csv-inc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, contents).unwrap();
        path
    }

    fn append(path: &std::path::Path, bytes: &[u8]) {
        use std::io::Write;
        let mut fh = std::fs::OpenOptions::new().append(true).open(path).unwrap();
        fh.write_all(bytes).unwrap();
    }

    #[test]
    fn revalidate_extends_on_append_and_rebuilds_on_edit() {
        let path = temp_csv("grow.csv", b"id,age\n1,64\n2,31\n");
        let schema = Schema::from_pairs([("id", Type::Int), ("age", Type::Int)]);
        let f = CsvFile::open("T", &path, b',', true, schema.clone()).unwrap();
        assert_eq!(f.num_rows(), 2);
        f.read_field(1, 1).unwrap(); // teach the positional map an offset
        assert!(matches!(f.revalidate().unwrap(), FileRefresh::Unchanged));

        append(&path, b"3,77\n4,12\n");
        let FileRefresh::Extended {
            file: g,
            prefix_units,
        } = f.revalidate().unwrap()
        else {
            panic!("append must extend");
        };
        // Old file ended in a newline, so every old row survives.
        assert_eq!(prefix_units, 2);
        assert_eq!(g.num_rows(), 4);
        assert_eq!(g.read_field(0, 0).unwrap(), Value::Int(1));
        assert_eq!(g.read_field(3, 1).unwrap(), Value::Int(12));
        // The learned offset rode along: re-reading (1, 1) is an exact hit.
        let before = g.stats().snapshot().posmap_hits;
        g.read_field(1, 1).unwrap();
        assert!(g.stats().snapshot().posmap_hits > before);
        // The extended index matches a cold build of the same bytes.
        let cold = CsvFile::open("T", &path, b',', true, schema.clone()).unwrap();
        assert_eq!(g.unit_offsets(), cold.unit_offsets());

        // An in-place edit (same length as the original prefix region, new
        // content) must trigger a full rebuild, not an extension.
        std::fs::write(&path, b"id,age\n9,99\n8,88\n7,77\n").unwrap();
        let FileRefresh::Rebuilt { file: h } = g.revalidate().unwrap() else {
            panic!("edit must rebuild");
        };
        assert_eq!(h.num_rows(), 3);
        assert_eq!(h.read_field(0, 1).unwrap(), Value::Int(99));

        // A truncation must also rebuild — without touching old pages.
        std::fs::write(&path, b"id,age\n5,50\n").unwrap();
        let FileRefresh::Rebuilt { file: t } = h.revalidate().unwrap() else {
            panic!("shrink must rebuild");
        };
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.read_field(0, 0).unwrap(), Value::Int(5));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_to_unterminated_last_row_extends_that_row() {
        // No trailing newline: the appended bytes glue onto the last old
        // row, so it must be re-tokenized and drops out of the valid
        // prefix.
        let path = temp_csv("ragged.csv", b"a,b\n1,2\n3,4");
        let schema = Schema::from_pairs([("a", Type::Int), ("b", Type::Int)]);
        let f = CsvFile::open("T", &path, b',', true, schema.clone()).unwrap();
        assert_eq!(f.num_rows(), 2);
        append(&path, b"5\n6,7\n");
        let FileRefresh::Extended {
            file: g,
            prefix_units,
        } = f.revalidate().unwrap()
        else {
            panic!("append must extend");
        };
        assert_eq!(prefix_units, 1, "glued-onto row is not prefix-valid");
        assert_eq!(g.num_rows(), 3);
        assert_eq!(g.read_field(1, 1).unwrap(), Value::Int(45));
        assert_eq!(g.read_field(2, 1).unwrap(), Value::Int(7));
        let cold = CsvFile::open("T", &path, b',', true, schema).unwrap();
        assert_eq!(g.unit_offsets(), cold.unit_offsets());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn extend_from_empty_and_header_only_files() {
        let schema = Schema::from_pairs([("a", Type::Int), ("b", Type::Int)]);
        // Header-only: zero old rows, append creates the first ones.
        let path = temp_csv("headeronly.csv", b"a,b\n");
        let f = CsvFile::open("T", &path, b',', true, schema.clone()).unwrap();
        assert_eq!(f.num_rows(), 0);
        append(&path, b"1,2\n3,4\n");
        let FileRefresh::Extended {
            file: g,
            prefix_units,
        } = f.revalidate().unwrap()
        else {
            panic!("append must extend");
        };
        assert_eq!(prefix_units, 0);
        assert_eq!(g.num_rows(), 2);
        assert_eq!(g.read_field(1, 0).unwrap(), Value::Int(3));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn no_trailing_newline_ok() {
        let data = b"a,b\n1,2".to_vec();
        let f = CsvFile::from_bytes(
            "T",
            data,
            b',',
            true,
            Schema::from_pairs([("a", Type::Int), ("b", Type::Int)]),
        )
        .unwrap();
        assert_eq!(f.num_rows(), 1);
        assert_eq!(f.read_field(0, 1).unwrap(), Value::Int(2));
    }
}
