//! # vida-formats
//!
//! Raw-data access layer: ViDa treats raw files as its native storage
//! (the "NoDB philosophy", ViDa §2), so this crate is the storage engine.
//!
//! It provides:
//! - the **source description grammar** (§3.1): a minimal catalog entry per
//!   dataset — schema, retrieval unit, access paths ([`description`]);
//! - a **CSV plugin** with NoDB-style *positional maps* that remember byte
//!   offsets of previously-parsed attributes so later queries seek instead of
//!   re-tokenizing ([`csv`]);
//! - a **JSON plugin** with a structural (semi-)index storing start/end byte
//!   positions of objects and top-level fields ([`json`]);
//! - a **binary array format** standing in for scientific array formats
//!   (ROOT/FITS/NetCDF-like) ([`binarray`]);
//! - the [`plugin::InputPlugin`] abstraction the JIT executor binds against,
//!   plus access statistics used by the optimizer's cost wrappers.

pub mod binarray;
pub mod csv;
pub mod description;
pub mod json;
pub mod plugin;
pub mod stats;

pub use csv::FileRefresh;
pub use description::{DataFormat, RetrievalUnit, SourceDescription};
pub use plugin::{open_plugin, open_plugin_with, InputPlugin, Revalidation};
pub use stats::AccessStats;
// Re-exported so downstream crates pick a raw-data backing without
// depending on vida-io directly.
pub use vida_io::MapMode;
