//! The input-plugin abstraction (ViDa §4.1, Figure 3).
//!
//! Every ViDa operator obtains its inputs through a *file-format-specific
//! input plugin*. The JIT executor binds one plugin per input at pipeline
//! generation time; the plugin exposes field-granular access so generated
//! scans touch only the attributes a query needs (no "database page" is ever
//! built — §4.1).
//!
//! Plugins also expose a per-column **cost factor** used by the optimizer's
//! format wrappers (§5): text formats report position-dependent costs that
//! shrink once positional structures are populated; binary formats report a
//! constant.

use crate::binarray::ArrayFile;
use crate::csv::{CsvFile, FileRefresh};
use crate::description::{DataFormat, SourceDescription};
use crate::json::JsonFile;
use crate::stats::AccessStats;
use std::sync::Arc;
use vida_types::{Result, Schema, Value, VidaError};

/// Outcome of re-statting a plugin's backing file at query description
/// time — the revalidation step every query runs before trusting caches.
///
/// Plugins are immutable once bound (scan workers share them through
/// `Arc`s), so a changed file produces a *replacement* plugin rather than
/// mutating in place; the catalog swaps it in and the old one dies with
/// its last in-flight query.
pub enum Revalidation {
    /// Fingerprint unchanged — replicas and positional structures are
    /// current, serve caches as today.
    Unchanged,
    /// The file grew by a pure append. `plugin` is a replacement reader
    /// whose positional structures were extended over only the appended
    /// tail; units `0..prefix_units` are byte-identical to the old file,
    /// so replicas covering exactly `prev_units` rows under
    /// `prev_fingerprint` remain valid for that prefix.
    Extended {
        plugin: Box<dyn InputPlugin>,
        /// Fingerprint the now-extended plugin was opened under —
        /// replicas keyed to it are prefix-valid, not stale.
        prev_fingerprint: (u64, u64),
        /// Unit count before the append (length of prefix replicas).
        prev_units: usize,
        /// Units whose byte spans survived unchanged (`prev_units`, or
        /// one less when the append glued onto an unterminated last row).
        prefix_units: usize,
    },
    /// The file shrank or changed in place: `plugin` is a fresh reader and
    /// every cache entry for the dataset is stale.
    Rebuilt { plugin: Box<dyn InputPlugin> },
}

/// A bound, format-specific reader for one raw dataset.
pub trait InputPlugin: Send + Sync {
    /// Dataset name as registered in the catalog.
    fn name(&self) -> &str;

    /// Schema of one retrieval unit.
    fn schema(&self) -> &Schema;

    /// Number of retrieval units (rows / objects / elements).
    fn num_units(&self) -> usize;

    /// Read one field of one unit, by schema column index.
    fn read_field(&self, row: usize, col: usize) -> Result<Value>;

    /// Read one whole unit as a record in schema order.
    fn read_unit(&self, row: usize) -> Result<Value> {
        let cols: Vec<usize> = (0..self.schema().len()).collect();
        let mut vals = Vec::with_capacity(cols.len());
        for c in cols {
            vals.push(self.read_field(row, c)?);
        }
        Ok(self.schema().record_value(vals))
    }

    /// Scan all units, projecting `cols` (schema indexes, caller order).
    fn scan_project(
        &self,
        cols: &[usize],
        f: &mut dyn FnMut(usize, Vec<Value>) -> Result<()>,
    ) -> Result<()> {
        self.scan_project_range(cols, 0..self.num_units(), f)
    }

    /// [`InputPlugin::scan_project`] restricted to a contiguous unit range
    /// — one morsel of a parallel scan. Implementations must be safe to
    /// call concurrently on disjoint ranges (the text plugins share only
    /// their atomic positional structures).
    fn scan_project_range(
        &self,
        cols: &[usize],
        rows: std::ops::Range<usize>,
        f: &mut dyn FnMut(usize, Vec<Value>) -> Result<()>,
    ) -> Result<()> {
        for row in rows {
            let mut vals = Vec::with_capacity(cols.len());
            for &c in cols {
                vals.push(self.read_field(row, c)?);
            }
            f(row, vals)?;
        }
        Ok(())
    }

    /// Raw byte span of unit `row`, when the format can report one
    /// (newline-aligned rows for CSV, record-aligned objects for JSON).
    /// Morsel dispatchers use it to balance chunks by raw bytes; `None`
    /// (the default) means "no meaningful byte spans" and dispatchers fall
    /// back to unit-count grids.
    fn unit_byte_span(&self, _row: usize) -> Option<(usize, usize)> {
        None
    }

    /// Contiguous unit start offsets — `num_units() + 1` entries where unit
    /// `i` spans `offsets[i]..offsets[i + 1]` — when the format's units
    /// tile the file back to back (CSV rows). Lets morsel dispatchers
    /// binary-search byte-balanced boundaries instead of walking per-unit
    /// spans; `None` (the default) falls back to [`Self::unit_byte_span`].
    fn unit_offsets(&self) -> Option<&[u32]> {
        None
    }

    /// Whether the raw bytes are backed by a shared file mapping (always
    /// false for formats without a raw file).
    fn is_mapped(&self) -> bool {
        false
    }

    /// Whether this format can report raw byte spans of individual fields —
    /// the prerequisite for positions-only cache replicas (Figure 4 (d)).
    fn supports_field_spans(&self) -> bool {
        false
    }

    /// Raw byte span of one field's text, when the format can report one
    /// (`None` for formats without field spans, and for JSON objects
    /// missing the field). Locating a span feeds the format's positional
    /// structures exactly like a read.
    fn field_byte_span(&self, _row: usize, _col: usize) -> Result<Option<(u64, u64)>> {
        Ok(None)
    }

    /// Parse the raw bytes of `span` as a value of column `col` — the
    /// rehydration path of a positions-only cache replica. Only meaningful
    /// for spans previously returned by
    /// [`InputPlugin::field_byte_span`] on an unchanged file.
    fn parse_field_span(&self, _col: usize, span: (u64, u64)) -> Result<Value> {
        Err(VidaError::format(
            self.name(),
            format!(
                "format cannot parse raw spans (span ({}, {}))",
                span.0, span.1
            ),
        ))
    }

    /// Shared access-statistics counters.
    fn stats(&self) -> Arc<AccessStats>;

    /// `(len, mtime nanoseconds)` fingerprint for cache invalidation,
    /// captured when the plugin was opened or last revalidated.
    fn fingerprint(&self) -> (u64, u64);

    /// Re-stat the backing file and report how it changed since this
    /// plugin was bound. The default (formats without a backing file, e.g.
    /// in-memory sources) is always [`Revalidation::Unchanged`].
    fn revalidate(&self) -> Result<Revalidation> {
        Ok(Revalidation::Unchanged)
    }

    /// Relative CPU cost of fetching column `col` of a fresh unit, where
    /// `1.0` is one buffer-pool-resident attribute fetch in a loaded DBMS
    /// (the paper's `const_cost`, §5).
    fn field_cost_factor(&self, col: usize) -> f64;

    /// Raw size of the underlying file in bytes.
    fn raw_bytes(&self) -> usize;
}

/// CSV-backed plugin.
pub struct CsvPlugin {
    file: CsvFile,
}

impl CsvPlugin {
    pub fn new(file: CsvFile) -> Self {
        CsvPlugin { file }
    }

    pub fn file(&self) -> &CsvFile {
        &self.file
    }

    pub fn file_mut(&mut self) -> &mut CsvFile {
        &mut self.file
    }
}

impl InputPlugin for CsvPlugin {
    fn name(&self) -> &str {
        self.file.name()
    }

    fn schema(&self) -> &Schema {
        self.file.schema()
    }

    fn num_units(&self) -> usize {
        self.file.num_rows()
    }

    fn read_field(&self, row: usize, col: usize) -> Result<Value> {
        self.file.read_field(row, col)
    }

    fn scan_project(
        &self,
        cols: &[usize],
        f: &mut dyn FnMut(usize, Vec<Value>) -> Result<()>,
    ) -> Result<()> {
        self.file.scan_project(cols, f)
    }

    fn scan_project_range(
        &self,
        cols: &[usize],
        rows: std::ops::Range<usize>,
        f: &mut dyn FnMut(usize, Vec<Value>) -> Result<()>,
    ) -> Result<()> {
        self.file.scan_project_range(cols, rows, f)
    }

    fn unit_byte_span(&self, row: usize) -> Option<(usize, usize)> {
        self.file.unit_byte_span(row)
    }

    fn unit_offsets(&self) -> Option<&[u32]> {
        Some(self.file.unit_offsets())
    }

    fn is_mapped(&self) -> bool {
        self.file.is_mapped()
    }

    fn supports_field_spans(&self) -> bool {
        true
    }

    fn field_byte_span(&self, row: usize, col: usize) -> Result<Option<(u64, u64)>> {
        let (s, e) = self.file.field_byte_span(row, col)?;
        Ok(Some((s as u64, e as u64)))
    }

    fn parse_field_span(&self, col: usize, span: (u64, u64)) -> Result<Value> {
        self.file
            .parse_field_span(col, (span.0 as usize, span.1 as usize))
    }

    fn stats(&self) -> Arc<AccessStats> {
        self.file.stats()
    }

    fn fingerprint(&self) -> (u64, u64) {
        self.file.fingerprint()
    }

    fn revalidate(&self) -> Result<Revalidation> {
        Ok(match self.file.revalidate()? {
            FileRefresh::Unchanged => Revalidation::Unchanged,
            FileRefresh::Extended { file, prefix_units } => Revalidation::Extended {
                prev_fingerprint: self.file.fingerprint(),
                prev_units: self.file.num_rows(),
                prefix_units,
                plugin: Box::new(CsvPlugin::new(file)),
            },
            FileRefresh::Rebuilt { file } => Revalidation::Rebuilt {
                plugin: Box::new(CsvPlugin::new(file)),
            },
        })
    }

    fn field_cost_factor(&self, col: usize) -> f64 {
        // Tokenize-from-row-start cost grows with column position; the
        // paper's example pegs un-indexed CSV at ~3x a loaded DBMS fetch.
        // Once the positional map tracks this column, cost approaches 1.
        let tracked = self.file.posmap_columns();
        let base = 3.0 + 0.002 * col as f64;
        if tracked > 0 {
            // Positional help: interpolate toward constant cost.
            1.0 + (base - 1.0) / (1.0 + tracked as f64)
        } else {
            base
        }
    }

    fn raw_bytes(&self) -> usize {
        self.file.raw_bytes()
    }
}

/// JSON-backed plugin. Schema columns map to top-level object fields.
pub struct JsonPlugin {
    file: JsonFile,
    /// Column index -> top-level field name (from schema order).
    columns: Vec<String>,
}

impl JsonPlugin {
    pub fn new(file: JsonFile) -> Self {
        let columns = file
            .schema()
            .fields()
            .iter()
            .map(|f| f.name.clone())
            .collect();
        JsonPlugin { file, columns }
    }

    pub fn file(&self) -> &JsonFile {
        &self.file
    }

    pub fn file_mut(&mut self) -> &mut JsonFile {
        &mut self.file
    }
}

impl InputPlugin for JsonPlugin {
    fn name(&self) -> &str {
        self.file.name()
    }

    fn schema(&self) -> &Schema {
        self.file.schema()
    }

    fn num_units(&self) -> usize {
        self.file.num_objects()
    }

    fn read_field(&self, row: usize, col: usize) -> Result<Value> {
        let field = self.columns.get(col).ok_or_else(|| {
            VidaError::format(self.file.name(), format!("column {col} out of range"))
        })?;
        self.file.read_field(row, field)
    }

    fn scan_project_range(
        &self,
        cols: &[usize],
        rows: std::ops::Range<usize>,
        f: &mut dyn FnMut(usize, Vec<Value>) -> Result<()>,
    ) -> Result<()> {
        let fields = cols
            .iter()
            .map(|&c| {
                self.columns.get(c).map(String::as_str).ok_or_else(|| {
                    VidaError::format(self.file.name(), format!("column {c} out of range"))
                })
            })
            .collect::<Result<Vec<_>>>()?;
        self.file.scan_project_range(&fields, rows, f)
    }

    fn unit_byte_span(&self, row: usize) -> Option<(usize, usize)> {
        self.file.unit_byte_span(row)
    }

    fn is_mapped(&self) -> bool {
        self.file.is_mapped()
    }

    fn supports_field_spans(&self) -> bool {
        true
    }

    fn field_byte_span(&self, row: usize, col: usize) -> Result<Option<(u64, u64)>> {
        let field = self.columns.get(col).ok_or_else(|| {
            VidaError::format(self.file.name(), format!("column {col} out of range"))
        })?;
        Ok(self
            .file
            .field_span(row, field)?
            .map(|(s, e)| (s as u64, e as u64)))
    }

    fn parse_field_span(&self, _col: usize, span: (u64, u64)) -> Result<Value> {
        self.file
            .parse_value_span((span.0 as usize, span.1 as usize))
    }

    fn stats(&self) -> Arc<AccessStats> {
        self.file.stats()
    }

    fn fingerprint(&self) -> (u64, u64) {
        self.file.fingerprint()
    }

    fn revalidate(&self) -> Result<Revalidation> {
        Ok(match self.file.revalidate()? {
            FileRefresh::Unchanged => Revalidation::Unchanged,
            FileRefresh::Extended { file, prefix_units } => Revalidation::Extended {
                prev_fingerprint: self.file.fingerprint(),
                prev_units: self.file.num_objects(),
                prefix_units,
                plugin: Box::new(JsonPlugin::new(file)),
            },
            FileRefresh::Rebuilt { file } => Revalidation::Rebuilt {
                plugin: Box::new(JsonPlugin::new(file)),
            },
        })
    }

    fn field_cost_factor(&self, _col: usize) -> f64 {
        // Navigating JSON text is costlier than CSV tokenization; the
        // structural index collapses it toward a constant.
        if self.file.semi_index_fields() > 0 {
            1.5
        } else {
            4.0
        }
    }

    fn raw_bytes(&self) -> usize {
        self.file.raw_bytes()
    }
}

/// Binary-array-backed plugin exposing the relational `(i0.., val)` view.
pub struct ArrayPlugin {
    file: ArrayFile,
    schema: Schema,
}

impl ArrayPlugin {
    pub fn new(file: ArrayFile) -> Self {
        let schema = file.relational_schema();
        ArrayPlugin { file, schema }
    }

    pub fn file(&self) -> &ArrayFile {
        &self.file
    }
}

impl InputPlugin for ArrayPlugin {
    fn name(&self) -> &str {
        self.file.name()
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn num_units(&self) -> usize {
        self.file.len()
    }

    fn read_field(&self, row: usize, col: usize) -> Result<Value> {
        let rank = self.file.dims().len();
        if col < rank {
            // Reconstruct the multi-index component for dimension `col`.
            let mut rem = row;
            let mut idx = vec![0usize; rank];
            for d in (0..rank).rev() {
                idx[d] = rem % self.file.dims()[d];
                rem /= self.file.dims()[d];
            }
            Ok(Value::Int(idx[col] as i64))
        } else if col == rank {
            let mut rem = row;
            let mut idx = vec![0usize; rank];
            for d in (0..rank).rev() {
                idx[d] = rem % self.file.dims()[d];
                rem /= self.file.dims()[d];
            }
            self.file.read_element(&idx)
        } else {
            Err(VidaError::format(
                self.file.name(),
                format!("column {col} out of range"),
            ))
        }
    }

    fn stats(&self) -> Arc<AccessStats> {
        self.file.stats()
    }

    fn fingerprint(&self) -> (u64, u64) {
        self.file.fingerprint()
    }

    fn revalidate(&self) -> Result<Revalidation> {
        Ok(match self.file.revalidate()? {
            FileRefresh::Unchanged => Revalidation::Unchanged,
            // Arrays fix their dims in the header, so any change — even a
            // growth — is a rebuild.
            FileRefresh::Extended { file, .. } | FileRefresh::Rebuilt { file } => {
                Revalidation::Rebuilt {
                    plugin: Box::new(ArrayPlugin::new(file)),
                }
            }
        })
    }

    fn field_cost_factor(&self, _col: usize) -> f64 {
        1.0 // binary: constant, position-independent (§5)
    }

    fn raw_bytes(&self) -> usize {
        self.file.raw_bytes()
    }
}

/// In-memory plugin over materialized records (tests, caches, literals).
pub struct MemPlugin {
    name: String,
    schema: Schema,
    rows: Vec<Vec<Value>>,
    stats: Arc<AccessStats>,
}

impl MemPlugin {
    pub fn new(name: impl Into<String>, schema: Schema, rows: Vec<Vec<Value>>) -> Self {
        MemPlugin {
            name: name.into(),
            schema,
            rows,
            stats: Arc::new(AccessStats::new()),
        }
    }

    /// Build from record values (each must match the schema's field order).
    pub fn from_records(
        name: impl Into<String>,
        schema: Schema,
        records: &[Value],
    ) -> Result<Self> {
        let name = name.into();
        let rows = records
            .iter()
            .map(|r| match r {
                Value::Record(fields) => Ok(fields.iter().map(|(_, v)| v.clone()).collect()),
                other => Err(VidaError::format(&name, format!("non-record {other}"))),
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(MemPlugin::new(name, schema, rows))
    }
}

impl InputPlugin for MemPlugin {
    fn name(&self) -> &str {
        &self.name
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn num_units(&self) -> usize {
        self.rows.len()
    }

    fn read_field(&self, row: usize, col: usize) -> Result<Value> {
        self.rows
            .get(row)
            .and_then(|r| r.get(col))
            .cloned()
            .ok_or_else(|| VidaError::format(&self.name, format!("({row},{col}) out of range")))
    }

    fn stats(&self) -> Arc<AccessStats> {
        Arc::clone(&self.stats)
    }

    fn fingerprint(&self) -> (u64, u64) {
        (self.rows.len() as u64, 1)
    }

    fn field_cost_factor(&self, _col: usize) -> f64 {
        1.0
    }

    fn raw_bytes(&self) -> usize {
        self.rows.len() * self.schema.len() * 8
    }
}

/// Open the right plugin for a source description (the plugin catalog of
/// Figure 3).
pub fn open_plugin(desc: &SourceDescription) -> Result<Box<dyn InputPlugin>> {
    open_plugin_with(desc, vida_io::MapMode::Auto)
}

/// [`open_plugin`] with an explicit raw-data backing policy
/// ([`vida_io::MapMode::Never`] is the `--no-mmap` escape hatch).
pub fn open_plugin_with(
    desc: &SourceDescription,
    mode: vida_io::MapMode,
) -> Result<Box<dyn InputPlugin>> {
    match &desc.format {
        DataFormat::Csv { delimiter, header } => {
            let file = CsvFile::open_with(
                desc.name.clone(),
                &desc.path,
                *delimiter,
                *header,
                desc.schema.clone(),
                mode,
            )?;
            Ok(Box::new(CsvPlugin::new(file)))
        }
        DataFormat::Json => {
            let file =
                JsonFile::open_with(desc.name.clone(), &desc.path, desc.schema.clone(), mode)?;
            Ok(Box::new(JsonPlugin::new(file)))
        }
        DataFormat::BinaryArray => {
            let file = ArrayFile::open_with(desc.name.clone(), &desc.path, mode)?;
            Ok(Box::new(ArrayPlugin::new(file)))
        }
        DataFormat::InMemory => Err(VidaError::Catalog(
            "in-memory sources are registered directly, not opened from disk".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binarray::{encode_array, ElemType};
    use vida_types::Type;

    fn csv_plugin() -> CsvPlugin {
        let data = b"id,x\n1,10.0\n2,20.0\n".to_vec();
        let file = CsvFile::from_bytes(
            "T",
            data,
            b',',
            true,
            Schema::from_pairs([("id", Type::Int), ("x", Type::Float)]),
        )
        .unwrap();
        CsvPlugin::new(file)
    }

    #[test]
    fn csv_plugin_reads_units() {
        let p = csv_plugin();
        assert_eq!(p.num_units(), 2);
        let u = p.read_unit(1).unwrap();
        assert_eq!(u.field("x"), Some(&Value::Float(20.0)));
    }

    #[test]
    fn csv_cost_factor_drops_with_posmap() {
        let p = csv_plugin();
        let before = p.field_cost_factor(1);
        assert!(before >= 3.0);
        p.read_field(0, 1).unwrap(); // populates positional map
        let after = p.field_cost_factor(1);
        assert!(after < before, "posmap should reduce cost factor");
    }

    #[test]
    fn json_plugin_maps_columns_to_fields() {
        let data = b"{\"a\":1,\"b\":\"x\"}\n{\"a\":2,\"b\":\"y\"}\n".to_vec();
        let file = JsonFile::from_bytes(
            "J",
            data,
            Schema::from_pairs([("a", Type::Int), ("b", Type::Str)]),
        )
        .unwrap();
        let p = JsonPlugin::new(file);
        assert_eq!(p.read_field(1, 0).unwrap(), Value::Int(2));
        assert_eq!(p.read_field(0, 1).unwrap(), Value::str("x"));
        assert!(p.read_field(0, 5).is_err());
        assert!(p.field_cost_factor(0) > 1.0);
    }

    #[test]
    fn array_plugin_relational_view() {
        let vals: Vec<Value> = (0..6).map(|i| Value::Float(i as f64)).collect();
        let bytes = encode_array(ElemType::F64, &[2, 3], &vals).unwrap();
        let p = ArrayPlugin::new(ArrayFile::from_bytes("A", bytes).unwrap());
        assert_eq!(p.num_units(), 6);
        // unit 4 -> (i0=1, i1=1, val=4.0)
        assert_eq!(p.read_field(4, 0).unwrap(), Value::Int(1));
        assert_eq!(p.read_field(4, 1).unwrap(), Value::Int(1));
        assert_eq!(p.read_field(4, 2).unwrap(), Value::Float(4.0));
        assert_eq!(p.field_cost_factor(2), 1.0);
    }

    #[test]
    fn mem_plugin_round_trip() {
        let schema = Schema::from_pairs([("id", Type::Int)]);
        let recs = vec![
            Value::record([("id", Value::Int(1))]),
            Value::record([("id", Value::Int(2))]),
        ];
        let p = MemPlugin::from_records("M", schema, &recs).unwrap();
        assert_eq!(p.num_units(), 2);
        assert_eq!(p.read_unit(0).unwrap(), recs[0]);
    }

    #[test]
    fn scan_project_default_impl() {
        let p = csv_plugin();
        let mut got = Vec::new();
        p.scan_project(&[1], &mut |_, vals| {
            got.push(vals);
            Ok(())
        })
        .unwrap();
        assert_eq!(
            got,
            vec![vec![Value::Float(10.0)], vec![Value::Float(20.0)]]
        );
    }

    #[test]
    fn scan_project_range_restricts_rows() {
        let p = csv_plugin();
        let mut got = Vec::new();
        p.scan_project_range(&[0], 1..2, &mut |row, vals| {
            got.push((row, vals));
            Ok(())
        })
        .unwrap();
        assert_eq!(got, vec![(1, vec![Value::Int(2)])]);
        // JSON plugin maps columns to field names in its ranged scan too.
        let data = b"{\"a\":1}\n{\"a\":2}\n{\"a\":3}\n".to_vec();
        let jp = JsonPlugin::new(
            JsonFile::from_bytes("J", data, Schema::from_pairs([("a", Type::Int)])).unwrap(),
        );
        let mut j = Vec::new();
        jp.scan_project_range(&[0], 0..2, &mut |row, vals| {
            j.push((row, vals));
            Ok(())
        })
        .unwrap();
        assert_eq!(j, vec![(0, vec![Value::Int(1)]), (1, vec![Value::Int(2)])]);
    }

    #[test]
    fn field_spans_round_trip_through_span_parse() {
        // CSV: span of (row 1, col "x") parses back to the same value.
        let p = csv_plugin();
        assert!(p.supports_field_spans());
        let span = p.field_byte_span(1, 1).unwrap().unwrap();
        assert_eq!(p.parse_field_span(1, span).unwrap(), Value::Float(20.0));
        // JSON: same round trip; a missing field has no span.
        let data = b"{\"a\":1,\"b\":\"x\"}\n{\"a\":2}\n".to_vec();
        let jp = JsonPlugin::new(
            JsonFile::from_bytes(
                "J",
                data,
                Schema::from_pairs([("a", Type::Int), ("b", Type::Str)]),
            )
            .unwrap(),
        );
        assert!(jp.supports_field_spans());
        let span = jp.field_byte_span(0, 1).unwrap().unwrap();
        assert_eq!(jp.parse_field_span(1, span).unwrap(), Value::str("x"));
        assert!(jp.field_byte_span(1, 1).unwrap().is_none());
        // In-memory plugin: no spans, and span parses are format errors.
        let schema = Schema::from_pairs([("id", Type::Int)]);
        let mem = MemPlugin::from_records("M", schema, &[Value::record([("id", Value::Int(1))])])
            .unwrap();
        assert!(!mem.supports_field_spans());
        assert!(mem.field_byte_span(0, 0).unwrap().is_none());
        assert!(mem.parse_field_span(0, (0, 1)).is_err());
    }

    #[test]
    fn resident_plugin_notices_disk_mutations() {
        // Regression: fingerprints used to be captured once at open and
        // never re-stat'd, so a resident plugin kept vouching for stale
        // replicas forever. `revalidate` must see the change.
        let dir = std::env::temp_dir().join(format!("vida-plugin-inc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resident.csv");
        std::fs::write(&path, b"id,x\n1,10\n2,20\n").unwrap();
        let schema = Schema::from_pairs([("id", Type::Int), ("x", Type::Int)]);
        let p = CsvPlugin::new(CsvFile::open("T", &path, b',', true, schema.clone()).unwrap());
        let opened = p.fingerprint();
        assert!(matches!(p.revalidate().unwrap(), Revalidation::Unchanged));

        // Same-length in-place edit: only the ns-mtime can catch it. The
        // kernel file clock ticks coarsely, so rewrite until it moves.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        let mut current = opened;
        while current == opened && std::time::Instant::now() < deadline {
            std::fs::write(&path, b"id,x\n1,10\n2,99\n").unwrap();
            current = vida_io::file_fingerprint(&path).unwrap();
        }
        assert_ne!(current, opened, "ns-mtime must distinguish the rewrite");
        assert_eq!(
            p.fingerprint(),
            opened,
            "resident plugin holds open-time fp"
        );
        let Revalidation::Rebuilt { plugin } = p.revalidate().unwrap() else {
            panic!("in-place edit must rebuild");
        };
        assert_eq!(plugin.read_field(1, 1).unwrap(), Value::Int(99));
        assert_ne!(plugin.fingerprint(), opened);

        // Append on the fresh plugin: extension with prefix bookkeeping.
        use std::io::Write;
        let mut fh = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        fh.write_all(b"3,30\n").unwrap();
        drop(fh);
        let Revalidation::Extended {
            plugin: grown,
            prev_fingerprint,
            prev_units,
            prefix_units,
        } = plugin.revalidate().unwrap()
        else {
            panic!("append must extend");
        };
        assert_eq!(prev_fingerprint, plugin.fingerprint());
        assert_eq!(prev_units, 2);
        assert_eq!(prefix_units, 2);
        assert_eq!(grown.num_units(), 3);
        assert_eq!(grown.read_field(2, 1).unwrap(), Value::Int(30));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn array_plugin_rebuilds_on_any_change() {
        let dir = std::env::temp_dir().join(format!("vida-plugin-inc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resident.arr");
        let vals: Vec<Value> = (0..4).map(Value::Int).collect();
        std::fs::write(&path, encode_array(ElemType::I64, &[4], &vals).unwrap()).unwrap();
        let p = ArrayPlugin::new(ArrayFile::open("A", &path).unwrap());
        assert!(matches!(p.revalidate().unwrap(), Revalidation::Unchanged));
        // Even a well-formed growth (more elements, bigger dims header) is
        // a rebuild — the header changed, nothing is prefix-stable.
        let vals: Vec<Value> = (0..6).map(Value::Int).collect();
        std::fs::write(&path, encode_array(ElemType::I64, &[6], &vals).unwrap()).unwrap();
        let Revalidation::Rebuilt { plugin } = p.revalidate().unwrap() else {
            panic!("array growth must rebuild");
        };
        assert_eq!(plugin.num_units(), 6);
        assert_eq!(plugin.read_field(5, 1).unwrap(), Value::Int(5));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn byte_spans_exposed_for_text_formats() {
        let p = csv_plugin();
        assert!(p.unit_byte_span(0).is_some());
        let schema = Schema::from_pairs([("id", Type::Int)]);
        let recs = vec![Value::record([("id", Value::Int(1))])];
        let mem = MemPlugin::from_records("M", schema, &recs).unwrap();
        assert!(mem.unit_byte_span(0).is_none());
    }
}
