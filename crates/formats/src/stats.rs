//! Access statistics.
//!
//! Every input plugin maintains an [`AccessStats`] that counts the physical
//! work done against the raw file. The optimizer's per-format cost wrappers
//! (ViDa §5) calibrate against these counters, and the benchmark harness
//! reports them (bytes parsed per query is the headline number behind the
//! positional-map experiment).

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters describing raw-data access work.
///
/// Shared (`Arc`) between a plugin and the engine's stats collector; all
/// counters are relaxed atomics — they are statistics, not synchronization.
#[derive(Debug, Default)]
pub struct AccessStats {
    /// Bytes tokenized/parsed (not merely mapped or skipped over).
    pub bytes_parsed: AtomicU64,
    /// Bytes skipped via positional structures instead of parsed.
    pub bytes_skipped: AtomicU64,
    /// Individual field values converted from raw text/bytes.
    pub fields_parsed: AtomicU64,
    /// Field reads answered from a positional structure (seek, no scan).
    pub posmap_hits: AtomicU64,
    /// Field reads that had to tokenize forward from a known position.
    pub posmap_partial: AtomicU64,
    /// Field reads with no positional help at all (full-row tokenize).
    pub posmap_misses: AtomicU64,
    /// Retrieval units (rows / objects / chunks) produced.
    pub units_read: AtomicU64,
}

impl AccessStats {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_bytes_parsed(&self, n: u64) {
        self.bytes_parsed.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_bytes_skipped(&self, n: u64) {
        self.bytes_skipped.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_fields_parsed(&self, n: u64) {
        self.fields_parsed.fetch_add(n, Ordering::Relaxed);
    }

    pub fn hit(&self) {
        self.posmap_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn partial(&self) {
        self.posmap_partial.fetch_add(1, Ordering::Relaxed);
    }

    pub fn miss(&self) {
        self.posmap_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_units(&self, n: u64) {
        self.units_read.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshot all counters (hits, partial, misses, bytes_parsed,
    /// bytes_skipped, fields_parsed, units_read).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            bytes_parsed: self.bytes_parsed.load(Ordering::Relaxed),
            bytes_skipped: self.bytes_skipped.load(Ordering::Relaxed),
            fields_parsed: self.fields_parsed.load(Ordering::Relaxed),
            posmap_hits: self.posmap_hits.load(Ordering::Relaxed),
            posmap_partial: self.posmap_partial.load(Ordering::Relaxed),
            posmap_misses: self.posmap_misses.load(Ordering::Relaxed),
            units_read: self.units_read.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero (between benchmark phases).
    pub fn reset(&self) {
        self.bytes_parsed.store(0, Ordering::Relaxed);
        self.bytes_skipped.store(0, Ordering::Relaxed);
        self.fields_parsed.store(0, Ordering::Relaxed);
        self.posmap_hits.store(0, Ordering::Relaxed);
        self.posmap_partial.store(0, Ordering::Relaxed);
        self.posmap_misses.store(0, Ordering::Relaxed);
        self.units_read.store(0, Ordering::Relaxed);
    }
}

/// A plain-old-data copy of [`AccessStats`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    pub bytes_parsed: u64,
    pub bytes_skipped: u64,
    pub fields_parsed: u64,
    pub posmap_hits: u64,
    pub posmap_partial: u64,
    pub posmap_misses: u64,
    pub units_read: u64,
}

impl StatsSnapshot {
    /// Fraction of positional lookups answered exactly (0.0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.posmap_hits + self.posmap_partial + self.posmap_misses;
        if total == 0 {
            0.0
        } else {
            self.posmap_hits as f64 / total as f64
        }
    }

    /// Difference of two snapshots (self - earlier).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            bytes_parsed: self.bytes_parsed - earlier.bytes_parsed,
            bytes_skipped: self.bytes_skipped - earlier.bytes_skipped,
            fields_parsed: self.fields_parsed - earlier.fields_parsed,
            posmap_hits: self.posmap_hits - earlier.posmap_hits,
            posmap_partial: self.posmap_partial - earlier.posmap_partial,
            posmap_misses: self.posmap_misses - earlier.posmap_misses,
            units_read: self.units_read - earlier.units_read,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let s = AccessStats::new();
        s.add_bytes_parsed(100);
        s.add_bytes_parsed(50);
        s.hit();
        s.hit();
        s.miss();
        s.add_units(3);
        let snap = s.snapshot();
        assert_eq!(snap.bytes_parsed, 150);
        assert_eq!(snap.posmap_hits, 2);
        assert_eq!(snap.posmap_misses, 1);
        assert_eq!(snap.units_read, 3);
        assert!((snap.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn reset_zeroes() {
        let s = AccessStats::new();
        s.add_fields_parsed(9);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
        assert_eq!(s.snapshot().hit_rate(), 0.0);
    }

    #[test]
    fn since_subtracts() {
        let s = AccessStats::new();
        s.add_bytes_parsed(10);
        let a = s.snapshot();
        s.add_bytes_parsed(5);
        s.partial();
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.bytes_parsed, 5);
        assert_eq!(d.posmap_partial, 1);
    }
}
