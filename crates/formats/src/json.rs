//! JSON input plugin with a structural (semi-)index (ViDa §2.1, §5;
//! Ottaviano & Grossi \[43\]).
//!
//! The file layout is newline-delimited JSON: one object per line — the
//! shape of the paper's BrainRegions dataset (17 000 objects from an MRI
//! processing pipeline). The **structural index** stores, per object, the
//! byte span of the object itself and the spans of top-level field values
//! discovered while answering earlier queries. A later query projecting
//! `b.volume` seeks straight to the recorded span instead of re-parsing the
//! whole (potentially deeply nested) object.
//!
//! Carrying only `(start, end)` positions through query execution — rather
//! than eagerly materializing large objects — is ViDa's cache-pollution
//! avoidance strategy (§5, Figure 4 layout (d)); [`JsonFile::field_span`]
//! provides exactly those positions.

use crate::csv::FileRefresh;
use crate::stats::AccessStats;
use std::collections::BTreeMap;
use std::ops::Range;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use vida_io::json::{next_composite_special, next_record_boundary, next_string_special};
use vida_io::{bom_len, MapMode, RawData};
use vida_types::sync::RwLock;
use vida_types::{CollectionKind, Result, Schema, Value, VidaError};

/// A newline-delimited JSON file opened for in-situ querying.
pub struct JsonFile {
    name: String,
    /// Raw bytes, memory-mapped when opened from disk (scan workers then
    /// share one set of pages) with an owned-buffer fallback.
    data: RawData,
    /// Byte span (start, end-exclusive) of each top-level object.
    objects: Vec<(u32, u32)>,
    /// field name -> per-object value spans. Spans are packed `(start <<
    /// 32) | end` atomics so populating a known field takes no lock: the
    /// map's write lock is held only to create a field's span array, and
    /// concurrent stores race benignly (a span is a pure function of the
    /// bytes). Scan workers therefore share one semi-index without
    /// serializing on it.
    semi_index: RwLock<BTreeMap<String, Arc<[AtomicU64]>>>,
    semi_index_enabled: bool,
    schema: Schema,
    stats: Arc<AccessStats>,
    /// `(file length, mtime nanoseconds)` captured at open/revalidation
    /// time — the staleness token the cache compares replicas against.
    fingerprint: (u64, u64),
    /// Where the bytes came from, kept so [`JsonFile::revalidate`] can
    /// re-stat and reopen. `None` for in-memory constructions.
    origin: Option<(std::path::PathBuf, MapMode)>,
}

/// Packed "span unknown" sentinel.
const NO_SPAN: u64 = u64::MAX;

#[inline]
fn pack_span(s: usize, e: usize) -> u64 {
    ((s as u64) << 32) | e as u64
}

#[inline]
fn unpack_span(packed: u64) -> Option<(usize, usize)> {
    (packed != NO_SPAN).then_some(((packed >> 32) as usize, (packed & 0xFFFF_FFFF) as usize))
}

impl JsonFile {
    pub fn open(name: impl Into<String>, path: &Path, schema: Schema) -> Result<Self> {
        Self::open_with(name, path, schema, MapMode::Auto)
    }

    /// [`JsonFile::open`] with an explicit backing policy ([`MapMode::Never`]
    /// is the `--no-mmap` escape hatch).
    pub fn open_with(
        name: impl Into<String>,
        path: &Path,
        schema: Schema,
        mode: MapMode,
    ) -> Result<Self> {
        let data = RawData::open_with(path, mode)?;
        let fingerprint = vida_io::file_fingerprint(path)?;
        let mut f = Self::from_raw(name.into(), data, schema)?;
        f.fingerprint = fingerprint;
        f.origin = Some((path.to_path_buf(), mode));
        Ok(f)
    }

    pub fn from_bytes(name: impl Into<String>, data: Vec<u8>, schema: Schema) -> Result<Self> {
        Self::from_raw(name.into(), RawData::from_vec(data), schema)
    }

    fn from_raw(name: String, data: RawData, schema: Schema) -> Result<Self> {
        let mut objects = Vec::new();
        // Skip a UTF-8 BOM so it never becomes part of the first record.
        let mut pos = bom_len(&data);
        while pos < data.len() {
            let end = next_record_boundary(&data, pos).unwrap_or(data.len());
            let line = &data[pos..end];
            if !line.iter().all(|b| b.is_ascii_whitespace()) {
                objects.push((pos as u32, end as u32));
            }
            pos = end + 1;
        }
        let fingerprint = (data.len() as u64, 0);
        Ok(JsonFile {
            name,
            data,
            objects,
            semi_index: RwLock::new(BTreeMap::new()),
            semi_index_enabled: true,
            schema,
            stats: Arc::new(AccessStats::new()),
            fingerprint,
            origin: None,
        })
    }

    /// Re-stat the backing file and report how it changed since this
    /// reader was built. Pure appends come back as
    /// [`FileRefresh::Extended`] with a replacement reader whose object
    /// index and semi-index were extended over only the appended tail;
    /// any other change rebuilds from scratch. In-memory files are always
    /// `Unchanged`.
    pub fn revalidate(&self) -> Result<FileRefresh<JsonFile>> {
        let Some((path, mode)) = &self.origin else {
            return Ok(FileRefresh::Unchanged);
        };
        let current = vida_io::file_fingerprint(path)?;
        if current == self.fingerprint {
            return Ok(FileRefresh::Unchanged);
        }
        // Reopen first: a shrunk file must never be probed through the old
        // mapping (pages past the new EOF raise SIGBUS).
        let data = RawData::open_with(path, *mode)?;
        let grown = data.len() as u64 == current.0 && current.0 > self.fingerprint.0;
        if grown && vida_io::prefix_matches(&self.data, &data) {
            let (file, prefix_units) = self.extend_from(data, current);
            return Ok(FileRefresh::Extended { file, prefix_units });
        }
        let mut file = Self::from_raw(self.name.clone(), data, self.schema.clone())?;
        file.fingerprint = current;
        file.origin = self.origin.clone();
        file.semi_index_enabled = self.semi_index_enabled;
        file.stats = Arc::clone(&self.stats);
        Ok(FileRefresh::Rebuilt { file })
    }

    /// Build the extended reader for a pure append: reuse every old object
    /// span except the last (appended bytes may glue onto an unterminated
    /// final line), rescan only from the start of that last object, and
    /// copy semi-index span arrays for the prefix objects — absolute byte
    /// offsets stay valid because the old bytes are a prefix of the new.
    fn extend_from(&self, data: RawData, fingerprint: (u64, u64)) -> (JsonFile, usize) {
        let n = self.num_objects();
        let mut objects: Vec<(u32, u32)>;
        let mut pos = if n == 0 {
            objects = Vec::new();
            bom_len(&data)
        } else {
            objects = self.objects[..n - 1].to_vec();
            self.objects[n - 1].0 as usize
        };
        while pos < data.len() {
            let end = next_record_boundary(&data, pos).unwrap_or(data.len());
            let line = &data[pos..end];
            if !line.iter().all(|b| b.is_ascii_whitespace()) {
                objects.push((pos as u32, end as u32));
            }
            pos = end + 1;
        }
        // The last old object stays prefix-valid only if the rescan
        // reproduced it exactly (i.e. the old file ended in a newline).
        let prefix_units = if n > 0 && objects.get(n - 1) == Some(&self.objects[n - 1]) {
            n
        } else {
            n.saturating_sub(1)
        };
        let semi_index = if self.semi_index_enabled {
            let old = self.semi_index.read();
            old.iter()
                .map(|(field, spans)| {
                    let fresh: Arc<[AtomicU64]> = (0..objects.len())
                        .map(|i| {
                            AtomicU64::new(if i < prefix_units {
                                spans[i].load(Ordering::Relaxed)
                            } else {
                                NO_SPAN
                            })
                        })
                        .collect();
                    (field.clone(), fresh)
                })
                .collect()
        } else {
            BTreeMap::new()
        };
        let file = JsonFile {
            name: self.name.clone(),
            data,
            objects,
            semi_index: RwLock::new(semi_index),
            semi_index_enabled: self.semi_index_enabled,
            schema: self.schema.clone(),
            stats: Arc::clone(&self.stats),
            fingerprint,
            origin: self.origin.clone(),
        };
        (file, prefix_units)
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    pub fn stats(&self) -> Arc<AccessStats> {
        Arc::clone(&self.stats)
    }

    pub fn fingerprint(&self) -> (u64, u64) {
        self.fingerprint
    }

    pub fn raw_bytes(&self) -> usize {
        self.data.len()
    }

    /// Whether the raw bytes are backed by a shared file mapping (vs an
    /// owned copy).
    pub fn is_mapped(&self) -> bool {
        self.data.is_mapped()
    }

    /// Disable the structural index (ablation baseline).
    pub fn set_semi_index_enabled(&mut self, enabled: bool) {
        self.semi_index_enabled = enabled;
        if !enabled {
            self.semi_index.write().clear();
        }
    }

    /// Byte span of object `row` including its trailing newline — the
    /// record-aligned unit parallel scans split on.
    pub fn unit_byte_span(&self, row: usize) -> Option<(usize, usize)> {
        let &(s, e) = self.objects.get(row)?;
        Some((s as usize, (e as usize + 1).min(self.data.len())))
    }

    /// Byte span of object `row` (Figure 4 layout (d): carry positions, not
    /// objects).
    pub fn object_span(&self, row: usize) -> Result<(usize, usize)> {
        self.objects
            .get(row)
            .map(|&(s, e)| (s as usize, e as usize))
            .ok_or_else(|| {
                VidaError::format(
                    &self.name,
                    format!("object {row} out of range ({} objects)", self.num_objects()),
                )
            })
    }

    /// Raw text of object `row` (Figure 4 layout (a)).
    pub fn object_text(&self, row: usize) -> Result<&str> {
        let (s, e) = self.object_span(row)?;
        std::str::from_utf8(&self.data[s..e])
            .map_err(|_| VidaError::format(&self.name, "invalid UTF-8 in object"))
    }

    /// Fully parse object `row` into a [`Value`] (Figure 4 layout (c)).
    pub fn read_object(&self, row: usize) -> Result<Value> {
        let (s, e) = self.object_span(row)?;
        self.stats.add_bytes_parsed((e - s) as u64);
        self.stats.add_units(1);
        let (v, _) = parse_json(&self.data[s..e], 0, &self.name)?;
        Ok(v)
    }

    /// Byte span of a top-level field's **value** within object `row`,
    /// using (and feeding) the structural index.
    pub fn field_span(&self, row: usize, field: &str) -> Result<Option<(usize, usize)>> {
        if self.semi_index_enabled {
            let idx = self.semi_index.read();
            if let Some(spans) = idx.get(field) {
                if let Some((s, e)) = unpack_span(spans[row].load(Ordering::Relaxed)) {
                    self.stats.hit();
                    let (os, _) = self.object_span(row)?;
                    self.stats.add_bytes_skipped((s - os) as u64);
                    return Ok(Some((s, e)));
                }
            }
            drop(idx);
        }
        self.stats.miss();
        let (os, oe) = self.object_span(row)?;
        let found = locate_top_level_field(&self.data[os..oe], field, &self.name)?;
        self.stats.add_bytes_parsed(match found {
            Some((_, e)) => e as u64,
            None => (oe - os) as u64,
        });
        let abs = found.map(|(s, e)| (os + s, os + e));
        if self.semi_index_enabled {
            if let Some((s, e)) = abs {
                // Common case: the span array exists — store under the
                // shared read lock. The write lock is only for the first
                // sighting of a field name.
                let idx = self.semi_index.read();
                if let Some(spans) = idx.get(field) {
                    spans[row].store(pack_span(s, e), Ordering::Relaxed);
                } else {
                    drop(idx);
                    let mut idx = self.semi_index.write();
                    let spans = idx.entry(field.to_string()).or_insert_with(|| {
                        (0..self.num_objects())
                            .map(|_| AtomicU64::new(NO_SPAN))
                            .collect()
                    });
                    spans[row].store(pack_span(s, e), Ordering::Relaxed);
                }
            }
        }
        Ok(abs)
    }

    /// Parse the raw JSON text in `span` as a value — rehydration of a
    /// positions-only replica (an exact seek into the file, one value
    /// parse, no object navigation).
    pub fn parse_value_span(&self, span: (usize, usize)) -> Result<Value> {
        let (start, end) = span;
        if start > end || end > self.data.len() {
            return Err(VidaError::format(
                &self.name,
                format!("bad span ({start}, {end})"),
            ));
        }
        self.stats.hit();
        self.stats.add_bytes_parsed((end - start) as u64);
        self.stats.add_fields_parsed(1);
        let (v, _) = parse_json(&self.data[start..end], 0, &self.name)?;
        Ok(v)
    }

    /// Read one top-level field of object `row` as a typed value.
    /// Missing fields read as `Null`.
    pub fn read_field(&self, row: usize, field: &str) -> Result<Value> {
        match self.field_span(row, field)? {
            None => Ok(Value::Null),
            Some((s, e)) => {
                self.stats.add_bytes_parsed((e - s) as u64);
                self.stats.add_fields_parsed(1);
                let (v, _) = parse_json(&self.data[s..e], 0, &self.name)?;
                Ok(v)
            }
        }
    }

    /// Number of fields currently tracked by the structural index.
    pub fn semi_index_fields(&self) -> usize {
        self.semi_index.read().len()
    }

    /// Scan all objects, projecting the given top-level fields.
    pub fn scan_project(
        &self,
        fields: &[&str],
        f: impl FnMut(usize, Vec<Value>) -> Result<()>,
    ) -> Result<()> {
        self.scan_project_range(fields, 0..self.num_objects(), f)
    }

    /// [`JsonFile::scan_project`] restricted to a contiguous object range —
    /// the per-morsel scan of parallel execution. Ranges from
    /// `vida_parallel::plan_scan` are record-aligned, so workers parse
    /// disjoint bytes and share only the atomic semi-index.
    pub fn scan_project_range(
        &self,
        fields: &[&str],
        rows: Range<usize>,
        mut f: impl FnMut(usize, Vec<Value>) -> Result<()>,
    ) -> Result<()> {
        for row in rows {
            let vals = fields
                .iter()
                .map(|name| self.read_field(row, name))
                .collect::<Result<Vec<_>>>()?;
            self.stats.add_units(1);
            f(row, vals)?;
        }
        Ok(())
    }
}

/// Find the value span of a top-level `field` inside one serialized object.
/// Returns byte offsets relative to `obj`.
fn locate_top_level_field(obj: &[u8], field: &str, source: &str) -> Result<Option<(usize, usize)>> {
    let mut i = skip_ws(obj, 0);
    if i >= obj.len() || obj[i] != b'{' {
        return Err(VidaError::format(source, "expected top-level object"));
    }
    i += 1;
    loop {
        i = skip_ws(obj, i);
        if i >= obj.len() {
            return Err(VidaError::format(source, "unterminated object"));
        }
        if obj[i] == b'}' {
            return Ok(None);
        }
        // Parse key string.
        let (key, after_key) = parse_string_raw(obj, i, source)?;
        i = skip_ws(obj, after_key);
        if i >= obj.len() || obj[i] != b':' {
            return Err(VidaError::format(source, "expected ':' after key"));
        }
        i = skip_ws(obj, i + 1);
        let value_start = i;
        let value_end = skip_value(obj, i, source)?;
        if key == field {
            return Ok(Some((value_start, value_end)));
        }
        i = skip_ws(obj, value_end);
        if i < obj.len() && obj[i] == b',' {
            i += 1;
        } else if i < obj.len() && obj[i] == b'}' {
            return Ok(None);
        } else if i >= obj.len() {
            return Err(VidaError::format(source, "unterminated object"));
        }
    }
}

fn skip_ws(data: &[u8], mut i: usize) -> usize {
    while i < data.len() && data[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// Parse a JSON string starting at `i` (must be a `"`), returning the decoded
/// text and the offset just past the closing quote.
fn parse_string_raw(data: &[u8], i: usize, source: &str) -> Result<(String, usize)> {
    if i >= data.len() || data[i] != b'"' {
        return Err(VidaError::format(source, "expected string"));
    }
    let mut out = String::new();
    let mut j = i + 1;
    while j < data.len() {
        match data[j] {
            b'"' => return Ok((out, j + 1)),
            b'\\' => {
                j += 1;
                if j >= data.len() {
                    break;
                }
                match data[j] {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        if j + 4 >= data.len() {
                            return Err(VidaError::format(source, "bad \\u escape"));
                        }
                        let hex = std::str::from_utf8(&data[j + 1..j + 5])
                            .map_err(|_| VidaError::format(source, "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| VidaError::format(source, "bad \\u escape"))?;
                        if (0xD800..=0xDBFF).contains(&code) {
                            // High surrogate: JSON encodes astral-plane
                            // characters as a \uXXXX\uXXXX pair. Combine
                            // with an immediately following low surrogate;
                            // a lone half stays U+FFFD.
                            let low = (data.get(j + 5) == Some(&b'\\')
                                && data.get(j + 6) == Some(&b'u')
                                && j + 10 < data.len())
                            .then(|| &data[j + 7..j + 11])
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .filter(|c| (0xDC00..=0xDFFF).contains(c));
                            match low {
                                Some(low) => {
                                    let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    out.push(char::from_u32(c).unwrap_or('\u{fffd}'));
                                    j += 10; // both escapes consumed
                                }
                                None => {
                                    out.push('\u{fffd}');
                                    j += 4;
                                }
                            }
                        } else {
                            // Lone low surrogates fall out of from_u32 as
                            // None and stay U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            j += 4;
                        }
                    }
                    c => {
                        return Err(VidaError::format(
                            source,
                            format!("bad escape \\{}", c as char),
                        ))
                    }
                }
                j += 1;
            }
            _ => {
                // Collect a run of plain bytes (fast path for long
                // strings): jump straight to the next `"` or `\`
                // word-at-a-time.
                let start = j;
                j = next_string_special(data, j).unwrap_or(data.len());
                out.push_str(
                    std::str::from_utf8(&data[start..j])
                        .map_err(|_| VidaError::format(source, "invalid UTF-8 in string"))?,
                );
            }
        }
    }
    Err(VidaError::format(source, "unterminated string"))
}

/// Skip over one JSON value starting at `i`, returning the end offset.
/// Used by the structural index to avoid materializing skipped values.
fn skip_value(data: &[u8], i: usize, source: &str) -> Result<usize> {
    let i = skip_ws(data, i);
    if i >= data.len() {
        return Err(VidaError::format(source, "expected value"));
    }
    match data[i] {
        b'"' => parse_string_raw(data, i, source).map(|(_, e)| e),
        b'{' | b'[' => {
            let (open, close) = if data[i] == b'{' {
                (b'{', b'}')
            } else {
                (b'[', b']')
            };
            // Balance brackets by hopping between structural bytes — `"`
            // (whose contents must not count), `open`, `close` — with the
            // word-at-a-time scanner; everything in between is skipped
            // without inspection.
            let mut depth = 0usize;
            let mut j = i;
            while let Some(k) = next_composite_special(data, j, open, close) {
                match data[k] {
                    b'"' => {
                        j = parse_string_raw(data, k, source)?.1;
                        continue;
                    }
                    c if c == open => depth += 1,
                    _ => {
                        depth -= 1;
                        if depth == 0 {
                            return Ok(k + 1);
                        }
                    }
                }
                j = k + 1;
            }
            Err(VidaError::format(source, "unterminated composite"))
        }
        _ => {
            let mut j = i;
            while j < data.len()
                && !matches!(data[j], b',' | b'}' | b']')
                && !data[j].is_ascii_whitespace()
            {
                j += 1;
            }
            Ok(j)
        }
    }
}

/// Recursive-descent JSON parser producing ViDa [`Value`]s.
///
/// JSON arrays become `List` collections; numbers parse as `Int` when they
/// contain no fraction/exponent, else `Float`.
pub fn parse_json(data: &[u8], i: usize, source: &str) -> Result<(Value, usize)> {
    let i = skip_ws(data, i);
    if i >= data.len() {
        return Err(VidaError::format(source, "unexpected end of JSON"));
    }
    match data[i] {
        b'{' => {
            let mut fields = Vec::new();
            let mut j = skip_ws(data, i + 1);
            if j < data.len() && data[j] == b'}' {
                return Ok((Value::Record(fields), j + 1));
            }
            loop {
                let (key, after) = parse_string_raw(data, skip_ws(data, j), source)?;
                let k = skip_ws(data, after);
                if k >= data.len() || data[k] != b':' {
                    return Err(VidaError::format(source, "expected ':'"));
                }
                let (val, end) = parse_json(data, k + 1, source)?;
                fields.push((key, val));
                j = skip_ws(data, end);
                if j < data.len() && data[j] == b',' {
                    j += 1;
                } else if j < data.len() && data[j] == b'}' {
                    return Ok((Value::Record(fields), j + 1));
                } else {
                    return Err(VidaError::format(source, "expected ',' or '}'"));
                }
            }
        }
        b'[' => {
            let mut items = Vec::new();
            let mut j = skip_ws(data, i + 1);
            if j < data.len() && data[j] == b']' {
                return Ok((Value::Collection(CollectionKind::List, items), j + 1));
            }
            loop {
                let (val, end) = parse_json(data, j, source)?;
                items.push(val);
                j = skip_ws(data, end);
                if j < data.len() && data[j] == b',' {
                    j += 1;
                } else if j < data.len() && data[j] == b']' {
                    return Ok((Value::Collection(CollectionKind::List, items), j + 1));
                } else {
                    return Err(VidaError::format(source, "expected ',' or ']'"));
                }
            }
        }
        b'"' => {
            let (s, end) = parse_string_raw(data, i, source)?;
            Ok((Value::Str(s), end))
        }
        b't' if data[i..].starts_with(b"true") => Ok((Value::Bool(true), i + 4)),
        b'f' if data[i..].starts_with(b"false") => Ok((Value::Bool(false), i + 5)),
        b'n' if data[i..].starts_with(b"null") => Ok((Value::Null, i + 4)),
        _ => {
            let end = skip_value(data, i, source)?;
            let text = std::str::from_utf8(&data[i..end])
                .map_err(|_| VidaError::format(source, "invalid UTF-8 in number"))?;
            if text.contains(['.', 'e', 'E']) {
                text.parse::<f64>()
                    .map(|f| (Value::Float(f), end))
                    .map_err(|_| VidaError::format(source, format!("bad number {text:?}")))
            } else {
                text.parse::<i64>()
                    .map(|n| (Value::Int(n), end))
                    .map_err(|_| VidaError::format(source, format!("bad number {text:?}")))
            }
        }
    }
}

/// Serialize a [`Value`] as JSON text (output plugin for Figure 4 layout
/// (a) and the docstore loader).
pub fn to_json(v: &Value) -> String {
    let mut out = String::new();
    write_json(v, &mut out);
    out
}

fn write_json(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.fract() == 0.0 && f.is_finite() && f.abs() < 1e15 {
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&f.to_string());
            }
        }
        Value::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        Value::Record(fields) => {
            out.push('{');
            for (i, (n, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(n);
                out.push_str("\":");
                write_json(v, out);
            }
            out.push('}');
        }
        Value::Collection(_, items) => {
            out.push('[');
            for (i, v) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(v, out);
            }
            out.push(']');
        }
        Value::Array { data, .. } => {
            out.push('[');
            for (i, v) in data.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json(v, out);
            }
            out.push(']');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vida_types::Type;

    fn sample() -> JsonFile {
        let data = concat!(
            "{\"id\":1,\"region\":\"hippocampus\",\"volume\":4.25,\"voxels\":[1,2,3],\"meta\":{\"scan\":\"mri-7\",\"depth\":{\"a\":1}}}\n",
            "{\"id\":2,\"region\":\"cortex\",\"volume\":9.5,\"voxels\":[],\"meta\":{\"scan\":\"mri-9\",\"depth\":{\"a\":2}}}\n",
            "{\"id\":3,\"region\":\"thalamus\",\"volume\":1.75,\"voxels\":[7],\"meta\":null}\n",
        )
        .as_bytes()
        .to_vec();
        JsonFile::from_bytes(
            "BrainRegions",
            data,
            Schema::from_pairs([
                ("id", Type::Int),
                ("region", Type::Str),
                ("volume", Type::Float),
            ]),
        )
        .unwrap()
    }

    #[test]
    fn counts_objects() {
        assert_eq!(sample().num_objects(), 3);
    }

    #[test]
    fn reads_scalar_fields() {
        let f = sample();
        assert_eq!(f.read_field(0, "id").unwrap(), Value::Int(1));
        assert_eq!(f.read_field(1, "region").unwrap(), Value::str("cortex"));
        assert_eq!(f.read_field(2, "volume").unwrap(), Value::Float(1.75));
        assert_eq!(f.read_field(0, "missing").unwrap(), Value::Null);
    }

    #[test]
    fn reads_nested_values() {
        let f = sample();
        let meta = f.read_field(0, "meta").unwrap();
        assert_eq!(meta.field("scan"), Some(&Value::str("mri-7")));
        let voxels = f.read_field(0, "voxels").unwrap();
        assert_eq!(voxels.elements().unwrap().len(), 3);
    }

    #[test]
    fn full_object_parse() {
        let f = sample();
        let obj = f.read_object(2).unwrap();
        assert_eq!(obj.field("meta"), Some(&Value::Null));
        assert_eq!(obj.field("id"), Some(&Value::Int(3)));
    }

    #[test]
    fn semi_index_hits_on_repeat() {
        let f = sample();
        f.read_field(0, "volume").unwrap();
        let s1 = f.stats().snapshot();
        assert_eq!(s1.posmap_misses, 1);
        f.read_field(0, "volume").unwrap();
        let s2 = f.stats().snapshot();
        assert_eq!(s2.posmap_hits, 1);
        assert_eq!(f.semi_index_fields(), 1);
    }

    #[test]
    fn semi_index_disabled_never_hits() {
        let mut f = sample();
        f.set_semi_index_enabled(false);
        f.read_field(0, "volume").unwrap();
        f.read_field(0, "volume").unwrap();
        assert_eq!(f.stats().snapshot().posmap_hits, 0);
        assert_eq!(f.semi_index_fields(), 0);
    }

    #[test]
    fn unit_spans_are_record_aligned() {
        let f = sample();
        let (s, e) = f.unit_byte_span(0).unwrap();
        assert_eq!(s, 0);
        assert_eq!(f.data[e - 1], b'\n');
        let (s1, _) = f.unit_byte_span(1).unwrap();
        assert_eq!(s1, e);
    }

    #[test]
    fn scan_project_range_matches_full_scan() {
        let f = sample();
        let mut full = Vec::new();
        f.scan_project(&["id", "volume"], |r, v| {
            full.push((r, v));
            Ok(())
        })
        .unwrap();
        let mut ranged = Vec::new();
        for r in 0..f.num_objects() {
            f.scan_project_range(&["id", "volume"], r..r + 1, |row, v| {
                ranged.push((row, v));
                Ok(())
            })
            .unwrap();
        }
        assert_eq!(full, ranged);
    }

    #[test]
    fn semi_index_is_shared_across_concurrent_scans() {
        let f = std::sync::Arc::new(sample());
        std::thread::scope(|s| {
            for r in (0..f.num_objects()).map(|r| r..r + 1) {
                let f = std::sync::Arc::clone(&f);
                s.spawn(move || {
                    f.scan_project_range(&["volume"], r, |_, _| Ok(())).unwrap();
                });
            }
        });
        let before = f.stats().snapshot();
        for row in 0..f.num_objects() {
            f.read_field(row, "volume").unwrap();
        }
        let after = f.stats().snapshot();
        assert_eq!(
            after.posmap_hits - before.posmap_hits,
            f.num_objects() as u64
        );
    }

    #[test]
    fn object_span_and_text() {
        let f = sample();
        let t = f.object_text(1).unwrap();
        assert!(t.starts_with("{\"id\":2"));
        let (s, e) = f.object_span(1).unwrap();
        assert!(e > s);
        assert!(f.object_span(99).is_err());
    }

    #[test]
    fn scan_project_all_rows() {
        let f = sample();
        let mut seen = Vec::new();
        f.scan_project(&["id", "volume"], |_, vals| {
            seen.push(vals);
            Ok(())
        })
        .unwrap();
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[1], vec![Value::Int(2), Value::Float(9.5)]);
    }

    #[test]
    fn parse_json_scalars() {
        let src = "BR";
        assert_eq!(parse_json(b"42", 0, src).unwrap().0, Value::Int(42));
        assert_eq!(parse_json(b"-7", 0, src).unwrap().0, Value::Int(-7));
        assert_eq!(parse_json(b"2.5", 0, src).unwrap().0, Value::Float(2.5));
        assert_eq!(parse_json(b"1e3", 0, src).unwrap().0, Value::Float(1000.0));
        assert_eq!(parse_json(b"true", 0, src).unwrap().0, Value::Bool(true));
        assert_eq!(parse_json(b"null", 0, src).unwrap().0, Value::Null);
        assert_eq!(
            parse_json(br#""a\nb""#, 0, src).unwrap().0,
            Value::str("a\nb")
        );
    }

    #[test]
    fn parse_json_unicode_escape() {
        let v = parse_json(b"\"\\u00e9\"", 0, "t").unwrap().0;
        assert_eq!(v, Value::str("\u{e9}"));
    }

    #[test]
    fn surrogate_pairs_decode_to_astral_chars() {
        // U+1F600 GRINNING FACE encodes as \ud83d\ude00 — it must decode to
        // one astral char, not two replacement chars.
        let v = parse_json(b"\"\\ud83d\\ude00\"", 0, "t").unwrap().0;
        assert_eq!(v, Value::str("\u{1F600}"));
        // Surrounding text and multiple pairs survive intact.
        let v = parse_json(b"\"a\\ud83d\\ude00b\\ud83e\\udd14c\"", 0, "t")
            .unwrap()
            .0;
        assert_eq!(v, Value::str("a\u{1F600}b\u{1F914}c"));
        // Raw (unescaped) astral UTF-8 passes through the fast path too.
        let v = parse_json("\"\u{1F600}\"".as_bytes(), 0, "t").unwrap().0;
        assert_eq!(v, Value::str("\u{1F600}"));
    }

    #[test]
    fn lone_surrogates_stay_replacement_chars() {
        // A high surrogate with no low half, a bare low surrogate, and a
        // high surrogate followed by a non-surrogate escape.
        let v = parse_json(b"\"\\ud83dx\"", 0, "t").unwrap().0;
        assert_eq!(v, Value::str("\u{fffd}x"));
        let v = parse_json(b"\"\\ude00x\"", 0, "t").unwrap().0;
        assert_eq!(v, Value::str("\u{fffd}x"));
        let v = parse_json(b"\"\\ud83d\\u0041\"", 0, "t").unwrap().0;
        assert_eq!(v, Value::str("\u{fffd}A"));
        // Two high surrogates in a row: each is lone.
        let v = parse_json(b"\"\\ud83d\\ud83d\"", 0, "t").unwrap().0;
        assert_eq!(v, Value::str("\u{fffd}\u{fffd}"));
    }

    #[test]
    fn astral_strings_round_trip_through_writer() {
        let v = Value::record([("emoji", Value::str("hi \u{1F600}\u{2603}"))]);
        let text = to_json(&v);
        let (back, _) = parse_json(text.as_bytes(), 0, "t").unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn json_round_trip() {
        let v = Value::record([
            ("id", Value::Int(1)),
            ("name", Value::str("a \"b\"")),
            (
                "xs",
                Value::list(vec![Value::Float(1.5), Value::Null, Value::Bool(false)]),
            ),
        ]);
        let text = to_json(&v);
        let (back, _) = parse_json(text.as_bytes(), 0, "t").unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn malformed_json_is_format_error() {
        assert_eq!(parse_json(b"{\"a\":", 0, "t").unwrap_err().kind(), "format");
        assert_eq!(parse_json(b"[1,", 0, "t").unwrap_err().kind(), "format");
        assert_eq!(
            parse_json(b"\"unterminated", 0, "t").unwrap_err().kind(),
            "format"
        );
    }

    #[test]
    fn utf8_bom_is_stripped() {
        // A BOM must not become part of the first record (it would make
        // `{"a":1}` unparseable as a top-level object).
        let data = b"\xEF\xBB\xBF{\"a\":1}\n{\"a\":2}\n".to_vec();
        let f = JsonFile::from_bytes("T", data, Schema::default()).unwrap();
        assert_eq!(f.num_objects(), 2);
        assert_eq!(f.read_field(0, "a").unwrap(), Value::Int(1));
        assert_eq!(f.read_field(1, "a").unwrap(), Value::Int(2));
        let t = f.object_text(0).unwrap();
        assert!(t.starts_with('{'), "BOM leaked into first object: {t:?}");
    }

    #[test]
    fn blank_lines_skipped() {
        let data = b"{\"a\":1}\n\n{\"a\":2}\n  \n".to_vec();
        let f = JsonFile::from_bytes("T", data, Schema::default()).unwrap();
        assert_eq!(f.num_objects(), 2);
        assert_eq!(f.read_field(1, "a").unwrap(), Value::Int(2));
    }

    #[test]
    fn revalidate_extends_on_append_and_rebuilds_on_edit() {
        let dir = std::env::temp_dir().join(format!("vida-json-inc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("grow.ndjson");
        std::fs::write(&path, b"{\"id\":1,\"v\":10}\n{\"id\":2,\"v\":20}\n").unwrap();
        let schema = Schema::from_pairs([("id", Type::Int), ("v", Type::Int)]);
        let f = JsonFile::open("T", &path, schema.clone()).unwrap();
        assert_eq!(f.num_objects(), 2);
        f.read_field(1, "v").unwrap(); // seed the semi-index
        assert!(matches!(f.revalidate().unwrap(), FileRefresh::Unchanged));

        use std::io::Write;
        let mut fh = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        fh.write_all(b"{\"id\":3,\"v\":30}\n").unwrap();
        drop(fh);
        let FileRefresh::Extended {
            file: g,
            prefix_units,
        } = f.revalidate().unwrap()
        else {
            panic!("append must extend");
        };
        assert_eq!(prefix_units, 2);
        assert_eq!(g.num_objects(), 3);
        assert_eq!(g.read_field(2, "v").unwrap(), Value::Int(30));
        // The seeded span rode along into the extended semi-index.
        let before = g.stats().snapshot().posmap_hits;
        g.read_field(1, "v").unwrap();
        assert!(g.stats().snapshot().posmap_hits > before);
        // Extended object index matches a cold build of the same bytes.
        let cold = JsonFile::open("T", &path, schema.clone()).unwrap();
        assert_eq!(g.objects, cold.objects);

        // In-place edit → full rebuild.
        std::fs::write(&path, b"{\"id\":9,\"v\":90}\n{\"id\":8,\"v\":80}\n").unwrap();
        let FileRefresh::Rebuilt { file: h } = g.revalidate().unwrap() else {
            panic!("edit must rebuild");
        };
        assert_eq!(h.num_objects(), 2);
        assert_eq!(h.read_field(0, "v").unwrap(), Value::Int(90));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn revalidate_append_onto_unterminated_line() {
        let dir = std::env::temp_dir().join(format!("vida-json-inc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ragged.ndjson");
        // Last line lacks its newline; the append completes it and adds one
        // more object, so the glued row drops out of the valid prefix.
        std::fs::write(&path, b"{\"id\":1}\n{\"id\":2").unwrap();
        let f = JsonFile::open("T", &path, Schema::default()).unwrap();
        assert_eq!(f.num_objects(), 2);
        use std::io::Write;
        let mut fh = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        fh.write_all(b"2}\n{\"id\":3}\n").unwrap();
        drop(fh);
        let FileRefresh::Extended {
            file: g,
            prefix_units,
        } = f.revalidate().unwrap()
        else {
            panic!("append must extend");
        };
        assert_eq!(prefix_units, 1);
        assert_eq!(g.num_objects(), 3);
        assert_eq!(g.read_field(1, "id").unwrap(), Value::Int(22));
        assert_eq!(g.read_field(2, "id").unwrap(), Value::Int(3));
        let cold = JsonFile::open("T", &path, Schema::default()).unwrap();
        assert_eq!(g.objects, cold.objects);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn field_span_positions_are_usable() {
        let f = sample();
        let (s, e) = f.field_span(0, "meta").unwrap().unwrap();
        // The span must parse standalone to the same value as read_field.
        let direct = f.read_field(0, "meta").unwrap();
        let data = f.object_text(0).unwrap().as_bytes();
        let (os, _) = f.object_span(0).unwrap();
        let (via_span, _) = parse_json(&data[s - os..e - os], 0, "t").unwrap();
        assert_eq!(via_span, direct);
    }
}
