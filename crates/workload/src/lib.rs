//! # vida-workload
//!
//! An HBP-style query-mix generator (ViDa §6).
//!
//! The paper's evaluation replays a Human Brain Project workload: a stream
//! of analytical queries over patient, genetics, and brain-region data whose
//! *locality* lets ViDa serve ~80% of accesses from its caches. This crate
//! generates such streams deterministically: a seeded xorshift generator
//! draws query templates over the HBP-like schema, with a configurable
//! locality knob that biases selections toward a hot range of the key space
//! (so cache-hit-rate experiments reproduce run to run).

/// Deterministic xorshift64* generator — no external RNG dependency.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Workload configuration.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// RNG seed; equal seeds generate equal query streams.
    pub seed: u64,
    /// Number of queries to generate.
    pub queries: usize,
    /// Fraction of selections drawn from the hot key range (the paper's
    /// workload locality; 0.8 reproduces the "80% served from caches"
    /// regime once the cache warms).
    pub locality: f64,
    /// Size of the key space selections range over.
    pub key_space: i64,
    /// Size of the hot range within the key space.
    pub hot_keys: i64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 42,
            queries: 100,
            locality: 0.8,
            key_space: 1000,
            hot_keys: 100,
        }
    }
}

/// The query templates in the mix, over the HBP-like schema
/// `Patients(id, age, city)` / `Genetics(id, snp)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Template {
    /// Aggregate over a filtered patient scan.
    PatientAggregate,
    /// Projection of patient attributes into a bag.
    PatientProjection,
    /// Equi-join of patients and genetics with an age filter.
    JoinSum,
    /// Existential check over genetics.
    GeneticsAny,
    /// Full-table scan + fold (no selective filter): the shape whose cost is
    /// dominated by raw parsing, and therefore the one that scales with
    /// morsel-driven workers.
    ScanFold,
    /// Unnest of a nested column with an element predicate.
    UnnestFold,
    /// Unnest whose elements then equi-join a flat table.
    UnnestJoin,
    /// Non-equi join with a range predicate (band sort-probe pipeline).
    ThetaBand,
    /// Non-equi join with an inequality predicate (block-nested-loop
    /// pipeline).
    ThetaLoop,
    /// Unnest + theta join chained in one comprehension.
    UnnestTheta,
    /// Equi-join written with the *filtered* relation first, so the blind
    /// left-deep plan builds its hash table on the unfiltered (larger)
    /// side — the shape the cost-based join reorder exists to fix.
    JoinMisordered,
    /// Three-relation equi-join chain with the small filtered relation in
    /// the middle — only a cardinality-aware order search gets it right.
    JoinThreeWay,
}

/// One generated query: its comprehension text and template.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    pub text: String,
    pub template: Template,
}

/// Generate a deterministic HBP-style query mix.
pub fn generate(config: &WorkloadConfig) -> Vec<QuerySpec> {
    let mut rng = Rng::new(config.seed);
    (0..config.queries)
        .map(|_| {
            let key = draw_key(&mut rng, config);
            let (template, text) = match rng.below(4) {
                0 => (
                    Template::PatientAggregate,
                    format!("for {{ p <- Patients, p.id < {key} }} yield avg p.age"),
                ),
                1 => (
                    Template::PatientProjection,
                    format!(
                        "for {{ p <- Patients, p.id < {key} }} \
                         yield bag (id := p.id, age := p.age)"
                    ),
                ),
                2 => (
                    Template::JoinSum,
                    format!(
                        "for {{ p <- Patients, g <- Genetics, p.id = g.id, \
                         p.age > {} }} yield sum g.snp",
                        20 + rng.below(60)
                    ),
                ),
                _ => (
                    Template::GeneticsAny,
                    format!("for {{ g <- Genetics, g.id < {key} }} yield any g.snp > 0.5"),
                ),
            };
            QuerySpec { text, template }
        })
        .collect()
}

/// Generate a scan-heavy mix for parallel-scaling experiments: full-table
/// folds and equi-joins with mild filters, so nearly every query touches
/// every unit of the raw files. Deterministic in the seed, like
/// [`generate`].
pub fn generate_scan_heavy(config: &WorkloadConfig) -> Vec<QuerySpec> {
    let mut rng = Rng::new(config.seed);
    (0..config.queries)
        .map(|_| {
            let (template, text) = match rng.below(4) {
                0 => (
                    Template::ScanFold,
                    "for { p <- Patients } yield sum p.age".to_string(),
                ),
                1 => (
                    Template::ScanFold,
                    "for { g <- Genetics } yield avg g.snp".to_string(),
                ),
                2 => (
                    Template::ScanFold,
                    format!(
                        "for {{ p <- Patients, p.age > {} }} yield count p",
                        20 + rng.below(30)
                    ),
                ),
                _ => (
                    Template::JoinSum,
                    format!(
                        "for {{ p <- Patients, g <- Genetics, p.id = g.id, \
                         p.age > {} }} yield sum g.snp",
                        20 + rng.below(30)
                    ),
                ),
            };
            QuerySpec { text, template }
        })
        .collect()
}

/// Generate the append-replay mix: the batch a driver re-runs after each
/// on-disk append to the raw inputs. The first two queries are *fixed*
/// full-scan folds over `Patients` and `Genetics` — single-scan primitive
/// aggregates with no filter, the shapes whose cached fold partials resume
/// across appends — so the first query touching each grown dataset
/// exercises the O(delta) path deterministically rather than by luck of
/// the draw; the rest is the scan-heavy mix. Deterministic in the seed,
/// like [`generate`].
pub fn generate_append_replay(config: &WorkloadConfig) -> Vec<QuerySpec> {
    let mut queries = vec![
        QuerySpec {
            text: "for { p <- Patients } yield sum p.age".to_string(),
            template: Template::ScanFold,
        },
        QuerySpec {
            text: "for { g <- Genetics } yield count g".to_string(),
            template: Template::ScanFold,
        },
    ];
    let rest = WorkloadConfig {
        queries: config.queries.saturating_sub(queries.len()),
        ..config.clone()
    };
    queries.extend(generate_scan_heavy(&rest));
    queries
}

/// Generate a nested-heavy mix: unnests over the `Regions(id, voxels)`
/// nested-JSON fixture, non-equi (theta) joins — both the band sort-probe
/// and the block-nested-loop shape — and chains mixing the two, so every
/// query exercises a pipeline shape that used to take the whole-query
/// Volcano fallback. (Bushy join *trees* cannot be written as
/// comprehensions — lowering is inherently left-deep — so those are covered
/// by directly-constructed plans in the differential fuzzer instead.)
/// Deterministic in the seed, like [`generate`].
pub fn generate_nested_heavy(config: &WorkloadConfig) -> Vec<QuerySpec> {
    let mut rng = Rng::new(config.seed);
    (0..config.queries)
        .map(|_| {
            let key = draw_key(&mut rng, config);
            let (template, text) = match rng.below(5) {
                0 => (
                    Template::UnnestFold,
                    format!(
                        "for {{ r <- Regions, v <- r.voxels, v > {} }} yield sum v",
                        rng.below(50)
                    ),
                ),
                1 => (
                    Template::UnnestJoin,
                    format!(
                        "for {{ r <- Regions, v <- r.voxels, g <- Genetics, \
                         v = g.id, r.id < {key} }} yield count v"
                    ),
                ),
                2 => (
                    Template::ThetaBand,
                    format!(
                        "for {{ p <- Patients, g <- Genetics, p.id < g.id, \
                         p.age > {} }} yield count p",
                        20 + rng.below(60)
                    ),
                ),
                3 => (
                    Template::ThetaLoop,
                    format!(
                        "for {{ p <- Patients, g <- Genetics, p.id != g.id, \
                         g.id < {} }} yield count g",
                        1 + rng.below(20)
                    ),
                ),
                _ => (
                    Template::UnnestTheta,
                    format!(
                        "for {{ r <- Regions, v <- r.voxels, p <- Patients, \
                         v < p.id, p.id < {} }} yield count v",
                        1 + rng.below(30)
                    ),
                ),
            };
            QuerySpec { text, template }
        })
        .collect()
}

/// Generate a join-heavy mix for the plan optimizer: equi-join chains
/// deliberately written in a bad syntactic order (the filtered relation
/// probing, the large one building), three-way chains, and a well-ordered
/// control. The selection keys follow the same locality skew as
/// [`generate`], so the predicate counters the optimizer samples see a
/// realistic key distribution. Deterministic in the seed.
pub fn generate_join_heavy(config: &WorkloadConfig) -> Vec<QuerySpec> {
    let mut rng = Rng::new(config.seed);
    (0..config.queries)
        .map(|_| {
            let key = draw_key(&mut rng, config);
            let (template, text) = match rng.below(4) {
                0 => (
                    Template::JoinMisordered,
                    format!(
                        "for {{ p <- Patients, g <- Genetics, p.id < {key}, \
                         p.id = g.id }} yield sum g.snp"
                    ),
                ),
                1 => (
                    Template::JoinMisordered,
                    format!(
                        "for {{ g <- Genetics, p <- Patients, g.id < {key}, \
                         g.id = p.id }} yield count p"
                    ),
                ),
                2 => (
                    Template::JoinThreeWay,
                    format!(
                        "for {{ g <- Genetics, p <- Patients, r <- Regions, \
                         p.id = g.id, p.id = r.id, p.id < {key} }} yield count p"
                    ),
                ),
                _ => (
                    Template::JoinSum,
                    format!(
                        "for {{ p <- Patients, g <- Genetics, p.id = g.id, \
                         p.age > {} }} yield sum g.snp",
                        20 + rng.below(60)
                    ),
                ),
            };
            QuerySpec { text, template }
        })
        .collect()
}

/// Generate a raw CSV fixture with `cols` columns per row — the wide-row
/// shape for scan-throughput experiments (tokenizer cost per row grows
/// with the column count, so narrow and wide fixtures stress different
/// parts of the scan loop). Column 0 is the row index (an `int` key);
/// the rest cycle int / dyadic float / string, and every third string is
/// RFC 4180-quoted with an embedded delimiter or doubled quote so the
/// quote-aware scan path stays hot. Deterministic in the seed.
pub fn generate_wide_csv(rows: usize, cols: usize, seed: u64) -> Vec<u8> {
    let cols = cols.max(1);
    let mut rng = Rng::new(seed);
    let mut out = String::new();
    for c in 0..cols {
        if c > 0 {
            out.push(',');
        }
        out.push_str(&format!("c{c}"));
    }
    out.push('\n');
    for r in 0..rows {
        out.push_str(&r.to_string());
        for c in 1..cols {
            out.push(',');
            match c % 3 {
                0 => out.push_str(&rng.below(100_000).to_string()),
                1 => out.push_str(&format!("{:.4}", rng.below(16) as f64 / 16.0)),
                _ => match rng.below(3) {
                    0 => out.push_str(&format!("\"v{},{}\"", rng.below(100), rng.below(100))),
                    1 => out.push_str(&format!("\"q\"\"{}\"", rng.below(100))),
                    _ => out.push_str(&format!("w{}", rng.below(1000))),
                },
            }
        }
        out.push('\n');
    }
    out.into_bytes()
}

/// Generate a raw newline-delimited JSON fixture with `cols` top-level
/// fields per object — the wide-row shape for semi-index build
/// experiments. Field `c0` is the object index; the rest cycle int /
/// dyadic float / string (some with escapes). Deterministic in the seed.
pub fn generate_wide_ndjson(rows: usize, cols: usize, seed: u64) -> Vec<u8> {
    let cols = cols.max(1);
    let mut rng = Rng::new(seed);
    let mut out = String::new();
    for r in 0..rows {
        out.push('{');
        out.push_str(&format!("\"c0\":{r}"));
        for c in 1..cols {
            out.push(',');
            match c % 3 {
                0 => out.push_str(&format!("\"c{c}\":{}", rng.below(100_000))),
                1 => out.push_str(&format!("\"c{c}\":{:.4}", rng.below(16) as f64 / 16.0)),
                _ => match rng.below(3) {
                    0 => out.push_str(&format!("\"c{c}\":\"s\\\"{}\"", rng.below(100))),
                    1 => out.push_str(&format!("\"c{c}\":\"u\\u2603{}\"", rng.below(100))),
                    _ => out.push_str(&format!("\"c{c}\":\"p{}\"", rng.below(1000))),
                },
            }
        }
        out.push_str("}\n");
    }
    out.into_bytes()
}

/// Schema matching [`generate_wide_csv`] and [`generate_wide_ndjson`]:
/// `c0` is the int key, the rest cycle int / float / string.
pub fn wide_schema(cols: usize) -> vida_types::Schema {
    use vida_types::Type;
    vida_types::Schema::from_pairs((0..cols.max(1)).map(|c| {
        let ty = match c % 3 {
            _ if c == 0 => Type::Int,
            0 => Type::Int,
            1 => Type::Float,
            _ => Type::Str,
        };
        (format!("c{c}"), ty)
    }))
}

fn draw_key(rng: &mut Rng, config: &WorkloadConfig) -> i64 {
    if rng.unit() < config.locality {
        rng.below(config.hot_keys.max(1) as u64) as i64
    } else {
        rng.below(config.key_space.max(1) as u64) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vida_lang::parse;

    #[test]
    fn generation_is_deterministic() {
        let c = WorkloadConfig::default();
        let a = generate(&c);
        let b = generate(&c);
        assert_eq!(a.len(), 100);
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.text == y.text && x.template == y.template));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&WorkloadConfig::default());
        let b = generate(&WorkloadConfig {
            seed: 7,
            ..Default::default()
        });
        assert!(a.iter().zip(&b).any(|(x, y)| x.text != y.text));
    }

    #[test]
    fn every_generated_query_parses() {
        for q in generate(&WorkloadConfig {
            queries: 200,
            ..Default::default()
        }) {
            parse(&q.text).unwrap_or_else(|e| panic!("{}: {e}", q.text));
        }
    }

    #[test]
    fn scan_heavy_mix_parses_and_is_deterministic() {
        let c = WorkloadConfig {
            queries: 50,
            ..Default::default()
        };
        let a = generate_scan_heavy(&c);
        let b = generate_scan_heavy(&c);
        assert_eq!(a.len(), 50);
        assert!(a.iter().zip(&b).all(|(x, y)| x.text == y.text));
        assert!(a.iter().any(|q| q.template == Template::ScanFold));
        for q in &a {
            parse(&q.text).unwrap_or_else(|e| panic!("{}: {e}", q.text));
        }
    }

    #[test]
    fn append_replay_mix_leads_with_fixed_resumable_probes() {
        let c = WorkloadConfig {
            queries: 30,
            ..Default::default()
        };
        let a = generate_append_replay(&c);
        let b = generate_append_replay(&c);
        assert_eq!(a.len(), 30);
        assert!(a.iter().zip(&b).all(|(x, y)| x.text == y.text));
        // The probes are unfiltered single-scan folds, one per mutated
        // dataset, and always lead the batch.
        assert_eq!(a[0].text, "for { p <- Patients } yield sum p.age");
        assert_eq!(a[1].text, "for { g <- Genetics } yield count g");
        for q in &a {
            parse(&q.text).unwrap_or_else(|e| panic!("{}: {e}", q.text));
        }
    }

    #[test]
    fn nested_heavy_mix_parses_covers_all_templates_and_is_deterministic() {
        let c = WorkloadConfig {
            queries: 60,
            ..Default::default()
        };
        let a = generate_nested_heavy(&c);
        let b = generate_nested_heavy(&c);
        assert_eq!(a.len(), 60);
        assert!(a.iter().zip(&b).all(|(x, y)| x.text == y.text));
        for t in [
            Template::UnnestFold,
            Template::UnnestJoin,
            Template::ThetaBand,
            Template::ThetaLoop,
            Template::UnnestTheta,
        ] {
            assert!(a.iter().any(|q| q.template == t), "missing {t:?}");
        }
        for q in &a {
            parse(&q.text).unwrap_or_else(|e| panic!("{}: {e}", q.text));
        }
    }

    #[test]
    fn join_heavy_mix_parses_covers_all_templates_and_is_deterministic() {
        let c = WorkloadConfig {
            queries: 60,
            ..Default::default()
        };
        let a = generate_join_heavy(&c);
        let b = generate_join_heavy(&c);
        assert_eq!(a.len(), 60);
        assert!(a.iter().zip(&b).all(|(x, y)| x.text == y.text));
        for t in [
            Template::JoinMisordered,
            Template::JoinThreeWay,
            Template::JoinSum,
        ] {
            assert!(a.iter().any(|q| q.template == t), "missing {t:?}");
        }
        for q in &a {
            parse(&q.text).unwrap_or_else(|e| panic!("{}: {e}", q.text));
        }
    }

    #[test]
    fn wide_csv_round_trips_through_the_format_layer() {
        use vida_formats::csv::CsvFile;
        let bytes = generate_wide_csv(40, 9, 11);
        assert_eq!(generate_wide_csv(40, 9, 11), bytes, "not deterministic");
        let file = CsvFile::from_bytes("W", bytes, b',', true, wide_schema(9)).unwrap();
        assert_eq!(file.num_rows(), 40);
        // Quoted cells (embedded commas, doubled quotes) must parse; the
        // row key pins row identity end to end.
        for row in [0usize, 17, 39] {
            assert_eq!(
                file.read_field(row, 0).unwrap(),
                vida_types::Value::Int(row as i64)
            );
            for col in 1..9 {
                file.read_field(row, col)
                    .unwrap_or_else(|e| panic!("row {row} col {col}: {e}"));
            }
        }
    }

    #[test]
    fn wide_ndjson_round_trips_through_the_format_layer() {
        use vida_formats::json::JsonFile;
        let bytes = generate_wide_ndjson(30, 7, 5);
        assert_eq!(generate_wide_ndjson(30, 7, 5), bytes, "not deterministic");
        let file = JsonFile::from_bytes("W", bytes, wide_schema(7)).unwrap();
        assert_eq!(file.num_objects(), 30);
        for row in [0usize, 13, 29] {
            assert_eq!(
                file.read_field(row, "c0").unwrap(),
                vida_types::Value::Int(row as i64)
            );
            for col in 1..7 {
                file.read_field(row, &format!("c{col}"))
                    .unwrap_or_else(|e| panic!("row {row} col {col}: {e}"));
            }
        }
    }

    #[test]
    fn locality_biases_toward_hot_keys() {
        // With locality 1.0 every drawn key sits inside the hot range.
        let mut rng = Rng::new(9);
        let hot = WorkloadConfig {
            locality: 1.0,
            ..Default::default()
        };
        for _ in 0..500 {
            assert!(draw_key(&mut rng, &hot) < hot.hot_keys);
        }
    }

    #[test]
    fn rng_covers_range() {
        let mut rng = Rng::new(1);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
