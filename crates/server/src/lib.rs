//! # vida-server
//!
//! A query **service** front end over the resident [`vida_exec::Engine`]:
//! the piece that turns "a library call per query" into "a long-lived
//! process serving concurrent clients", the deployment shape the paper's
//! in-situ engine assumes (queries arrive continuously against the same
//! raw files, and all cross-query state — caches, positional maps, the
//! cost model — pays off only if something stays resident to hold it).
//!
//! Three parts:
//!
//! - **Admission control** ([`QueryServer::submit`]): a bounded queue in
//!   front of a fixed set of executor threads. A full queue rejects the
//!   request immediately (with an error response on its sink) instead of
//!   buffering unboundedly.
//! - **Time-sliced execution**: each executor thread runs its query as an
//!   engine [`Session`](vida_exec::Session), so every concurrent query's
//!   parallel phases attach to the *same* resident worker pool and
//!   interleave at morsel granularity (`pool_multiplexed_claims` in the
//!   metrics registry counts exactly these interleavings).
//! - **Streaming delivery** ([`protocol`]): results leave through the
//!   existing output plugins ([`vida_exec::output`]) one row frame at a
//!   time over a length-prefixed protocol; a slow client blocks only its
//!   own executor thread (backpressure), never the engine.
//!
//! Shutdown is drain-first: [`QueryServer::shutdown`] (and `Drop`) stop
//! admissions, let queued and in-flight queries finish, then park the
//! executors.

pub mod protocol;
pub mod service;

pub use protocol::{read_frame, read_response, write_frame, QueryResponse};
pub use service::{QueryRequest, QueryServer, ServerConfig, ServerStats, SharedBuffer};
