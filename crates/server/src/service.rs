//! The query service: admission control, executor threads, and streaming
//! delivery over one resident [`Engine`].
//!
//! A [`QueryServer`] owns a fixed set of **executor threads** and a
//! **bounded admission queue** in front of them. [`QueryServer::submit`]
//! either enqueues the request (admitted) or refuses it immediately with
//! an error response on its sink (rejected) — the queue never grows past
//! `queue_depth`, so a burst of clients degrades into fast rejections
//! instead of unbounded memory.
//!
//! Every executor runs its query as a [`Session`](vida_exec::Session) of
//! the shared engine, so concurrent queries' parallel phases attach to the
//! *same* resident worker pool and time-slice at morsel granularity. The
//! server adds no second pool: executor threads block in `attach_run`
//! while the pool's workers multiplex their morsels.
//!
//! Results stream row-by-row through the output plugins into the
//! request's sink using the [`protocol`](crate::protocol) frames; a slow
//! sink blocks only its own executor (backpressure).
//!
//! **Shutdown is drain-first**: `shutdown()` (and `Drop`) stop admission,
//! let queued and in-flight queries finish, then join the executors.
//! [`QueryServer::drain`] alone blocks until the server is idle without
//! stopping it — useful between phases of a benchmark.

use crate::protocol::{finish_response, write_frame};
use std::collections::VecDeque;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar};
use std::thread::JoinHandle;
use vida_algebra::{lower, rewrite};
use vida_exec::{output, Engine, OutputFormat};
use vida_lang::parse;
use vida_trace::global_metrics;
use vida_types::sync::Mutex;
use vida_types::{Result, Value};

/// Sizing knobs for a [`QueryServer`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Executor threads draining the admission queue. Each runs one query
    /// at a time; all share the engine's one worker pool.
    pub executors: usize,
    /// Maximum queued (admitted but not yet running) requests before
    /// `submit` rejects.
    pub queue_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            executors: 2,
            queue_depth: 64,
        }
    }
}

/// One client query: source text, an optional tenant for cache billing,
/// the output plugin to encode rows with, and the sink that response
/// frames stream into.
pub struct QueryRequest {
    pub query: String,
    pub tenant: Option<String>,
    pub format: OutputFormat,
    pub sink: Box<dyn Write + Send>,
}

impl QueryRequest {
    /// A text-format, untenanted request — the common case.
    pub fn new(query: impl Into<String>, sink: Box<dyn Write + Send>) -> Self {
        QueryRequest {
            query: query.into(),
            tenant: None,
            format: OutputFormat::Text,
            sink,
        }
    }

    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    pub fn with_format(mut self, format: OutputFormat) -> Self {
        self.format = format;
        self
    }
}

impl std::fmt::Debug for QueryRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryRequest")
            .field("query", &self.query)
            .field("tenant", &self.tenant)
            .field("format", &self.format)
            .finish_non_exhaustive()
    }
}

/// A point-in-time snapshot of the server's admission counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests accepted into the queue.
    pub admitted: u64,
    /// Requests refused (queue full or server shutting down).
    pub rejected: u64,
    /// Queries executed and streamed successfully.
    pub completed: u64,
    /// Queries that errored (parse/plan/execution/sink failures).
    pub failed: u64,
    /// Queries currently running on executor threads.
    pub in_flight: u64,
    /// High-water mark of `in_flight` — `>= 2` proves queries actually
    /// overlapped on the shared pool.
    pub peak_in_flight: u64,
}

struct QueueState {
    queue: VecDeque<QueryRequest>,
    shutdown: bool,
}

struct Shared {
    engine: Arc<Engine>,
    state: Mutex<QueueState>,
    /// Wakes executors on submit/shutdown.
    work_cv: Condvar,
    /// Wakes `drain` when the server may have gone idle.
    idle_cv: Condvar,
    admitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    in_flight: AtomicU64,
    peak_in_flight: AtomicU64,
}

/// The resident query service: a bounded admission queue feeding executor
/// threads that run concurrent sessions over one shared [`Engine`].
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use vida_exec::{Engine, JitOptions, MemoryCatalog};
/// use vida_server::{read_response, QueryRequest, QueryServer, ServerConfig};
/// use vida_types::{Schema, Type, Value};
///
/// let cat = MemoryCatalog::new();
/// cat.register_records(
///     "T",
///     Schema::from_pairs([("x", Type::Int)]),
///     &[Value::record([("x", Value::Int(41))])],
/// )
/// .unwrap();
/// let engine = Arc::new(Engine::new(Arc::new(cat), JitOptions::default()));
/// let server = QueryServer::start(engine, ServerConfig::default());
///
/// let buf = vida_server::service::SharedBuffer::default();
/// assert!(server.submit(QueryRequest::new(
///     "for { t <- T } yield sum t.x",
///     Box::new(buf.clone()),
/// )));
/// server.drain();
/// let resp = read_response(&mut std::io::Cursor::new(buf.take())).unwrap();
/// assert!(resp.is_ok());
/// assert_eq!(resp.rows, vec![b"41".to_vec()]);
/// ```
pub struct QueryServer {
    shared: Arc<Shared>,
    queue_depth: usize,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl QueryServer {
    /// Spawn `config.executors` executor threads over `engine` and start
    /// accepting submissions.
    pub fn start(engine: Arc<Engine>, config: ServerConfig) -> QueryServer {
        let shared = Arc::new(Shared {
            engine,
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            peak_in_flight: AtomicU64::new(0),
        });
        let handles = (0..config.executors.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("vida-server-{i}"))
                    .spawn(move || executor_loop(&shared))
                    .expect("spawn server executor")
            })
            .collect();
        QueryServer {
            shared,
            queue_depth: config.queue_depth,
            handles: Mutex::new(handles),
        }
    }

    /// Admit `request` into the queue, or reject it if the queue is full
    /// (or the server is shutting down). Rejection writes an error
    /// response to the request's sink and returns `false`.
    pub fn submit(&self, request: QueryRequest) -> bool {
        {
            let mut state = self.shared.state.lock();
            if !state.shutdown && state.queue.len() < self.queue_depth {
                state.queue.push_back(request);
                self.shared.admitted.fetch_add(1, Ordering::SeqCst);
                self.shared.work_cv.notify_one();
                return true;
            }
        }
        self.shared.rejected.fetch_add(1, Ordering::SeqCst);
        let mut sink = request.sink;
        let _ = write_frame(&mut *sink, b"-server busy: admission queue full");
        let _ = finish_response(&mut *sink);
        false
    }

    /// Block until every admitted query has finished (queue empty, none
    /// in flight). Does not stop the server.
    pub fn drain(&self) {
        let mut state = self.shared.state.lock();
        while !state.queue.is_empty() || self.shared.in_flight.load(Ordering::SeqCst) > 0 {
            state = match self.shared.idle_cv.wait(state) {
                Ok(g) => g,
                Err(e) => e.into_inner(),
            };
        }
    }

    /// Drain-first shutdown: stop admissions, finish queued and in-flight
    /// queries, join the executors. `Drop` does the same.
    pub fn shutdown(self) {
        self.close();
    }

    fn close(&self) {
        {
            let mut state = self.shared.state.lock();
            state.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.handles.lock().drain(..) {
            let _ = handle.join();
        }
    }

    /// The engine all sessions run on.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.shared.engine
    }

    /// Current admission counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            admitted: self.shared.admitted.load(Ordering::SeqCst),
            rejected: self.shared.rejected.load(Ordering::SeqCst),
            completed: self.shared.completed.load(Ordering::SeqCst),
            failed: self.shared.failed.load(Ordering::SeqCst),
            in_flight: self.shared.in_flight.load(Ordering::SeqCst),
            peak_in_flight: self.shared.peak_in_flight.load(Ordering::SeqCst),
        }
    }

    /// The stats endpoint: server admission counters, accumulated engine
    /// [`ExecStats`](vida_exec::ExecStats), cache/tenant/layout counters,
    /// and the global metrics registry, as one JSON object.
    pub fn stats_json(&self) -> String {
        let s = self.stats();
        let mut out = String::with_capacity(1024);
        out.push('{');
        out.push_str(&format!(
            "\"server\":{{\"admitted\":{},\"rejected\":{},\"completed\":{},\"failed\":{},\
             \"in_flight\":{},\"peak_in_flight\":{}}},",
            s.admitted, s.rejected, s.completed, s.failed, s.in_flight, s.peak_in_flight
        ));
        out.push_str(&format!(
            "\"engine\":{},",
            self.shared.engine.stats().to_json()
        ));
        match self.shared.engine.cache() {
            Some(cache) => {
                let cs = cache.stats();
                out.push_str(&format!(
                    "\"cache\":{{\"hits\":{},\"misses\":{},\"insertions\":{},\"evictions\":{},\
                     \"invalidations\":{},\"used_bytes\":{},\"budget_bytes\":{},",
                    cs.hits,
                    cs.misses,
                    cs.insertions,
                    cs.evictions,
                    cs.invalidations,
                    cache.used_bytes(),
                    cache.budget_bytes()
                ));
                out.push_str(&format!(
                    "\"layouts\":{},",
                    layouts_json(&cache.layout_counts())
                ));
                out.push_str("\"tenants\":{");
                for (i, name) in cache.tenant_names().iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let ts = cache.tenant_stats(name);
                    let budget = match ts.budget_bytes {
                        Some(b) => b.to_string(),
                        None => "null".to_string(),
                    };
                    out.push_str(&format!(
                        "\"{}\":{{\"budget_bytes\":{},\"used_bytes\":{},\"insertions\":{},\
                         \"evictions\":{},\"layouts\":{}}}",
                        json_escape(name),
                        budget,
                        ts.used_bytes,
                        ts.insertions,
                        ts.evictions,
                        layouts_json(&cache.layout_counts_for(name))
                    ));
                }
                out.push_str("}},");
            }
            None => out.push_str("\"cache\":null,"),
        }
        out.push_str(&format!(
            "\"metrics\":{}",
            global_metrics().snapshot().to_json()
        ));
        out.push('}');
        out
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        self.close();
    }
}

impl std::fmt::Debug for QueryServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryServer")
            .field("queue_depth", &self.queue_depth)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

fn layouts_json(counts: &[(vida_cache::Layout, usize)]) -> String {
    let mut out = String::from("{");
    for (i, (layout, n)) in counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{n}", layout.name()));
    }
    out.push('}');
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn executor_loop(shared: &Shared) {
    loop {
        let request = {
            let mut state = shared.state.lock();
            loop {
                if let Some(request) = state.queue.pop_front() {
                    break request;
                }
                // Drain-first shutdown: only exit once the queue is empty.
                if state.shutdown {
                    return;
                }
                state = match shared.work_cv.wait(state) {
                    Ok(g) => g,
                    Err(e) => e.into_inner(),
                };
            }
        };
        let now = shared.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        shared.peak_in_flight.fetch_max(now, Ordering::SeqCst);
        let ok = serve(&shared.engine, request);
        if ok {
            shared.completed.fetch_add(1, Ordering::SeqCst);
        } else {
            shared.failed.fetch_add(1, Ordering::SeqCst);
        }
        // Decrement under the state lock so `drain`'s re-check of
        // `in_flight` cannot miss this wakeup.
        let _state = shared.state.lock();
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        shared.idle_cv.notify_all();
    }
}

/// Run one request end to end: parse, execute as an engine session, and
/// stream the response frames. Returns whether the query both executed
/// and streamed successfully.
fn serve(engine: &Engine, request: QueryRequest) -> bool {
    let QueryRequest {
        query,
        tenant,
        format,
        mut sink,
    } = request;
    let rows = run_query(engine, &query, tenant.as_deref())
        .and_then(|result| encode_rows(&result, format));
    match rows {
        Ok(rows) => stream_rows(&mut *sink, &rows).is_ok(),
        Err(e) => {
            let _ = write_frame(&mut *sink, format!("-{e}").as_bytes());
            let _ = finish_response(&mut *sink);
            false
        }
    }
}

fn run_query(engine: &Engine, query: &str, tenant: Option<&str>) -> Result<Value> {
    let plan = rewrite(&lower(&parse(query)?)?);
    let mut session = match tenant {
        Some(t) => engine.session_for(t),
        None => engine.session(),
    };
    session.execute(&plan)
}

/// Encode a result into per-row frames through the output plugins. CSV
/// sends its header line as the first row frame.
fn encode_rows(result: &Value, format: OutputFormat) -> Result<Vec<Vec<u8>>> {
    match format {
        OutputFormat::Csv => Ok(output::to_csv(result)?
            .lines()
            .map(|line| line.as_bytes().to_vec())
            .collect()),
        OutputFormat::Text => Ok(output::to_values(result)
            .iter()
            .map(|row| row.to_string().into_bytes())
            .collect()),
        OutputFormat::Values | OutputFormat::BinaryJson => Ok(output::to_values(result)
            .iter()
            .map(output::to_binary_json)
            .collect()),
    }
}

fn stream_rows(sink: &mut dyn Write, rows: &[Vec<u8>]) -> io::Result<()> {
    write_frame(sink, b"+")?;
    for row in rows {
        write_frame(sink, row)?;
    }
    finish_response(sink)
}

/// A cloneable in-memory sink for in-process clients: every clone appends
/// to the same buffer, and [`SharedBuffer::take`] hands the bytes back.
#[derive(Debug, Default, Clone)]
pub struct SharedBuffer(Arc<Mutex<Vec<u8>>>);

impl SharedBuffer {
    /// Take the accumulated bytes, leaving the buffer empty.
    pub fn take(&self) -> Vec<u8> {
        std::mem::take(&mut self.0.lock())
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::read_response;
    use std::io::Cursor;
    use std::sync::mpsc;
    use std::time::Duration;
    use vida_exec::{JitOptions, MemoryCatalog};
    use vida_types::{Schema, Type};

    fn engine() -> Arc<Engine> {
        let cat = MemoryCatalog::new();
        cat.register_records(
            "Patients",
            Schema::from_pairs([("id", Type::Int), ("age", Type::Int), ("city", Type::Str)]),
            &[
                Value::record([
                    ("id", Value::Int(1)),
                    ("age", Value::Int(71)),
                    ("city", Value::str("geneva")),
                ]),
                Value::record([
                    ("id", Value::Int(2)),
                    ("age", Value::Int(34)),
                    ("city", Value::str("bern")),
                ]),
            ],
        )
        .unwrap();
        Arc::new(Engine::new(Arc::new(cat), JitOptions::default()))
    }

    fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
        for _ in 0..5000 {
            if cond() {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        panic!("timed out waiting for {what}");
    }

    /// A sink that blocks its executor on the first write until released
    /// — makes "two queries in flight at once" deterministic.
    struct GatedSink {
        gate: mpsc::Receiver<()>,
        opened: bool,
        out: SharedBuffer,
    }

    impl Write for GatedSink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if !self.opened {
                let _ = self.gate.recv();
                self.opened = true;
            }
            self.out.write(buf)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn gated() -> (mpsc::Sender<()>, SharedBuffer, Box<dyn Write + Send>) {
        let (tx, rx) = mpsc::channel();
        let buf = SharedBuffer::default();
        let sink = GatedSink {
            gate: rx,
            opened: false,
            out: buf.clone(),
        };
        (tx, buf, Box::new(sink))
    }

    #[test]
    fn streams_text_rows_and_counts_completion() {
        let server = QueryServer::start(engine(), ServerConfig::default());
        let buf = SharedBuffer::default();
        assert!(server.submit(QueryRequest::new(
            "for { p <- Patients, p.age > 60 } yield sum p.age",
            Box::new(buf.clone()),
        )));
        server.drain();
        let resp = read_response(&mut Cursor::new(buf.take())).unwrap();
        assert!(resp.is_ok());
        assert_eq!(resp.rows, vec![b"71".to_vec()]);
        let stats = server.stats();
        assert_eq!((stats.admitted, stats.completed, stats.failed), (1, 1, 0));
    }

    #[test]
    fn binary_rows_decode_back_to_values() {
        let server = QueryServer::start(engine(), ServerConfig::default());
        let buf = SharedBuffer::default();
        server.submit(
            QueryRequest::new(
                "for { p <- Patients } yield list p.id",
                Box::new(buf.clone()),
            )
            .with_format(OutputFormat::BinaryJson),
        );
        server.drain();
        let resp = read_response(&mut Cursor::new(buf.take())).unwrap();
        let ids: Vec<Value> = resp
            .rows
            .iter()
            .map(|r| vida_cache::decode_value(r, 0).unwrap().0)
            .collect();
        assert_eq!(ids, vec![Value::Int(1), Value::Int(2)]);
    }

    #[cfg(unix)]
    #[test]
    fn streams_over_a_socket_pair() {
        use std::os::unix::net::UnixStream;
        let server = QueryServer::start(engine(), ServerConfig::default());
        let (mut client, served) = UnixStream::pair().unwrap();
        server.submit(QueryRequest::new(
            "for { p <- Patients } yield count p",
            Box::new(served),
        ));
        let resp = read_response(&mut client).unwrap();
        assert!(resp.is_ok());
        assert_eq!(resp.rows, vec![b"2".to_vec()]);
    }

    #[test]
    fn query_errors_come_back_as_error_responses() {
        let server = QueryServer::start(engine(), ServerConfig::default());
        let bad_parse = SharedBuffer::default();
        let bad_name = SharedBuffer::default();
        server.submit(QueryRequest::new("for { oops", Box::new(bad_parse.clone())));
        server.submit(QueryRequest::new(
            "for { x <- NoSuchDataset } yield count x",
            Box::new(bad_name.clone()),
        ));
        server.drain();
        for buf in [bad_parse, bad_name] {
            let resp = read_response(&mut Cursor::new(buf.take())).unwrap();
            assert!(!resp.is_ok());
            assert!(resp.rows.is_empty());
        }
        assert_eq!(server.stats().failed, 2);
    }

    #[test]
    fn full_queue_rejects_with_error_response() {
        let server = QueryServer::start(
            engine(),
            ServerConfig {
                executors: 1,
                queue_depth: 1,
            },
        );
        let plan = "for { p <- Patients } yield count p";
        // Occupy the lone executor...
        let (gate, running_buf, running_sink) = gated();
        assert!(server.submit(QueryRequest::new(plan, running_sink)));
        wait_until("first query in flight", || server.stats().in_flight == 1);
        // ...fill the queue...
        let queued = SharedBuffer::default();
        assert!(server.submit(QueryRequest::new(plan, Box::new(queued.clone()))));
        // ...and the next submission bounces.
        let bounced = SharedBuffer::default();
        assert!(!server.submit(QueryRequest::new(plan, Box::new(bounced.clone()))));
        let resp = read_response(&mut Cursor::new(bounced.take())).unwrap();
        assert!(resp.error.as_deref().unwrap().contains("busy"));
        gate.send(()).unwrap();
        server.drain();
        let stats = server.stats();
        assert_eq!((stats.admitted, stats.rejected, stats.completed), (2, 1, 2));
        assert!(read_response(&mut Cursor::new(running_buf.take()))
            .unwrap()
            .is_ok());
        assert!(read_response(&mut Cursor::new(queued.take()))
            .unwrap()
            .is_ok());
    }

    #[test]
    fn concurrent_queries_overlap_on_one_engine() {
        let server = QueryServer::start(
            engine(),
            ServerConfig {
                executors: 2,
                queue_depth: 8,
            },
        );
        let plan = "for { p <- Patients } yield avg p.age";
        let (gate_a, buf_a, sink_a) = gated();
        let (gate_b, buf_b, sink_b) = gated();
        server.submit(QueryRequest::new(plan, sink_a));
        server.submit(QueryRequest::new(plan, sink_b));
        // Both executors sit blocked in their sinks -> provably overlapped.
        wait_until("both queries in flight", || server.stats().in_flight == 2);
        assert!(server.stats().peak_in_flight >= 2);
        gate_a.send(()).unwrap();
        gate_b.send(()).unwrap();
        server.drain();
        assert_eq!(server.stats().completed, 2);
        for buf in [buf_a, buf_b] {
            assert!(read_response(&mut Cursor::new(buf.take())).unwrap().is_ok());
        }
    }

    #[test]
    fn shutdown_drains_queued_queries_then_rejects() {
        let server = QueryServer::start(
            engine(),
            ServerConfig {
                executors: 1,
                queue_depth: 8,
            },
        );
        let bufs: Vec<SharedBuffer> = (0..4)
            .map(|_| {
                let buf = SharedBuffer::default();
                server.submit(QueryRequest::new(
                    "for { p <- Patients } yield count p",
                    Box::new(buf.clone()),
                ));
                buf
            })
            .collect();
        server.drain();
        server.shutdown();
        for buf in bufs {
            assert!(read_response(&mut Cursor::new(buf.take())).unwrap().is_ok());
        }
    }

    #[test]
    fn tenanted_requests_bill_the_tenant() {
        let server = QueryServer::start(engine(), ServerConfig::default());
        let buf = SharedBuffer::default();
        server.submit(
            QueryRequest::new("for { p <- Patients } yield count p", Box::new(buf.clone()))
                .with_tenant("acme"),
        );
        server.drain();
        assert!(read_response(&mut Cursor::new(buf.take())).unwrap().is_ok());
        // MemoryCatalog queries carry no replica cache, but the stats
        // endpoint still renders coherently.
        let json = server.stats_json();
        assert!(json.contains("\"server\":"));
        assert!(json.contains("\"engine\":"));
        assert!(json.contains("\"metrics\":"));
    }

    #[test]
    fn stats_json_reports_cache_and_tenants_when_attached() {
        let cache = Arc::new(vida_cache::CacheManager::new(1 << 20));
        cache.set_tenant_budget("acme", 1 << 16);
        let cat = MemoryCatalog::new();
        cat.register_records("T", Schema::from_pairs([("x", Type::Int)]), &[])
            .unwrap();
        let opts = JitOptions {
            cache: Some(cache),
            ..Default::default()
        };
        let engine = Arc::new(Engine::new(Arc::new(cat), opts));
        let server = QueryServer::start(engine, ServerConfig::default());
        let json = server.stats_json();
        assert!(json.contains("\"cache\":{"));
        assert!(json.contains("\"acme\":{\"budget_bytes\":65536"));
    }
}
