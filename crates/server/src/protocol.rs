//! The length-prefixed streaming result protocol.
//!
//! Every message is a frame: a little-endian `u32` payload length followed
//! by the payload bytes. One query response is:
//!
//! 1. a **status frame** — `+` on success, or `-` followed by the error
//!    message;
//! 2. zero or more **row frames**, one encoded result row each (the
//!    encoding is whatever [`vida_exec::OutputFormat`] the request named);
//! 3. the **zero-length terminator frame**.
//!
//! Frames go through `Write::write_all` straight into the request's sink
//! (a socket, pipe, or buffer), so a slow consumer applies backpressure to
//! the executor thread serving it — the engine itself never buffers a
//! whole result set per client beyond the row being framed.

use std::io::{self, Read, Write};

/// Upper bound accepted by [`read_frame`]: a corrupt length prefix must
/// not make the reader allocate gigabytes.
pub const MAX_FRAME_LEN: u32 = 1 << 28;

/// Write one frame (length prefix + payload) to `sink`.
pub fn write_frame(sink: &mut dyn Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!((payload.len() as u64) <= MAX_FRAME_LEN as u64);
    sink.write_all(&(payload.len() as u32).to_le_bytes())?;
    sink.write_all(payload)
}

/// Terminate a response: the zero-length frame, then a flush.
pub fn finish_response(sink: &mut dyn Write) -> io::Result<()> {
    sink.write_all(&0u32.to_le_bytes())?;
    sink.flush()
}

/// Read one frame from `src`; `Ok(None)` is the zero-length terminator.
pub fn read_frame(src: &mut dyn Read) -> io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    src.read_exact(&mut prefix)?;
    let len = u32::from_le_bytes(prefix);
    if len == 0 {
        return Ok(None);
    }
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds protocol limit"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    src.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// A fully-read response: status parsed, row frames collected in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResponse {
    /// `None` on success; the server's error message otherwise.
    pub error: Option<String>,
    /// The encoded row frames (empty on error).
    pub rows: Vec<Vec<u8>>,
}

impl QueryResponse {
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

/// Read one whole response off `src`, blocking until the terminator.
pub fn read_response(src: &mut dyn Read) -> io::Result<QueryResponse> {
    let status = read_frame(src)?.ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidData, "response missing status frame")
    })?;
    let error = match status.first() {
        Some(b'+') => None,
        Some(b'-') => Some(String::from_utf8_lossy(&status[1..]).into_owned()),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "status frame must start with '+' or '-'",
            ))
        }
    };
    let mut rows = Vec::new();
    while let Some(row) = read_frame(src)? {
        rows.push(row);
    }
    Ok(QueryResponse { error, rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"row one").unwrap();
        let back = read_frame(&mut Cursor::new(buf)).unwrap();
        assert_eq!(back.as_deref(), Some(&b"row one"[..]));
    }

    #[test]
    fn response_round_trips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"+").unwrap();
        write_frame(&mut buf, b"a").unwrap();
        write_frame(&mut buf, b"bb").unwrap();
        finish_response(&mut buf).unwrap();
        let resp = read_response(&mut Cursor::new(buf)).unwrap();
        assert!(resp.is_ok());
        assert_eq!(resp.rows, vec![b"a".to_vec(), b"bb".to_vec()]);
    }

    #[test]
    fn error_response_carries_message() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"-no such dataset").unwrap();
        finish_response(&mut buf).unwrap();
        let resp = read_response(&mut Cursor::new(buf)).unwrap();
        assert_eq!(resp.error.as_deref(), Some("no such dataset"));
        assert!(resp.rows.is_empty());
    }

    #[test]
    fn corrupt_length_prefix_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(b"junk");
        assert!(read_frame(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn truncated_stream_is_an_error_not_a_hang() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"+").unwrap();
        write_frame(&mut buf, b"partial row").unwrap();
        // No terminator: the reader hits EOF and reports it.
        assert!(read_response(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn bad_status_marker_is_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"?what").unwrap();
        finish_response(&mut buf).unwrap();
        assert!(read_response(&mut Cursor::new(buf)).is_err());
    }
}
